package core

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"reflect"
	"runtime"
	"strings"
	"sync"
	"time"
)

// This file is the sharded sweep engine. A parameter-sweep scenario —
// the shape of the paper's headline results: Figure-1 throughput
// probes, the backbone aggregate at each carrier generation, mixed
// traffic per OC level — used to iterate its whole grid inside one
// simulation kernel on one core. A Sweep instead describes the grid
// declaratively (Axes), evaluates one grid point at a time (PointFunc)
// and reassembles the point results into the ordinary scenario Report
// (MergeFunc). The executor leases batches of grid points to shards
// through a work-stealing Dispatcher (dispatch.go) — each shard owning
// a fresh sim.Kernel/netsim.Network/Testbed — and merges results in
// grid order — never completion order — so a run's report is
// byte-identical to the sequential one at any shard or worker count.
// The same dispatcher queue serves remote workers (internal/dist),
// which lease points over HTTP; SweepRun is the executor core shared by
// both paths.
//
// A Sweep is an ordinary Scenario: register it with MustRegister and it
// runs through Run/RunAll/cmd/gtwrun with no special cases.

// Axis is one named dimension of a sweep grid.
type Axis struct {
	// Name labels the dimension (diagnostics only).
	Name string
	// Values are the points along this axis, in sweep order.
	Values []any
}

// Point is one coordinate of the sweep grid. Points enumerate the cross
// product of the axes in row-major order: the last axis varies fastest.
type Point struct {
	// Index is the point's position in grid order.
	Index int
	// Coords holds one value per axis, in axis order.
	Coords []any
}

// Coord returns the point's value along axis i.
func (pt Point) Coord(i int) any { return pt.Coords[i] }

// PointFunc evaluates one grid point. tb is the shard's testbed: a
// fresh instance owned by the shard by default, or the one shared
// testbed when the run was given WithTestbed (shared runs must touch it
// only through its concurrency-safe methods). Point functions that
// drive their own simulation kernel (BackboneAggregate-style) ignore tb.
type PointFunc func(ctx context.Context, tb *Testbed, opts Options, pt Point) (any, error)

// MergeFunc reassembles the per-point results — always in grid order,
// one entry per point — into the scenario's Report.
type MergeFunc func(opts Options, results []any) (Report, error)

// Sweep is a parameter-sweep scenario: a grid of points evaluated
// independently and merged deterministically. It implements Scenario.
type Sweep struct {
	name, desc string
	axes       []Axis
	runPoint   PointFunc
	merge      MergeFunc
	noTestbed  bool
	// encode/decode are the wire codec for point results; nil means the
	// sweep is not distributable. WirePoint installs the default
	// JSON-of-concrete-type codec; plan wrappers install a report codec.
	encode func(v any) ([]byte, error)
	decode func(b []byte) (any, error)
	// keyDeps lists the Options fields the point function reads (nil:
	// assume all wire fields), narrowing each point's content address.
	keyDeps []OptField
	// grid memoizes Points(): axes are fixed at construction, and the
	// per-point paths (EvalPoint in the worker's streaming loop) must
	// not re-enumerate the whole grid per point.
	gridOnce sync.Once
	grid     []Point
}

// NoShardTestbed declares that every point function builds its own
// simulation state (BackboneAggregate-style) and ignores the testbed
// argument, so shards skip constructing one. A shared testbed from
// WithTestbed is still passed through. Returns the sweep for chaining:
//
//	MustRegister(NewSweep(...).NoShardTestbed())
func (sw *Sweep) NoShardTestbed() *Sweep {
	sw.noTestbed = true
	return sw
}

// NewSweep builds a sweep scenario over the cross product of axes.
// Register the result like any other scenario.
func NewSweep(name, description string, axes []Axis, runPoint PointFunc, merge MergeFunc) *Sweep {
	return &Sweep{name: name, desc: description, axes: axes, runPoint: runPoint, merge: merge}
}

// Name implements Scenario.
func (sw *Sweep) Name() string { return sw.name }

// Description implements Scenario.
func (sw *Sweep) Description() string { return sw.desc }

// Axes returns the sweep's grid dimensions.
func (sw *Sweep) Axes() []Axis { return sw.axes }

// Points enumerates the grid in row-major order (last axis fastest).
// The slice is computed once and shared; callers must not mutate it.
func (sw *Sweep) Points() []Point {
	sw.gridOnce.Do(func() {
		total := 1
		for _, ax := range sw.axes {
			total *= len(ax.Values)
		}
		if len(sw.axes) == 0 {
			total = 0
		}
		pts := make([]Point, total)
		for i := 0; i < total; i++ {
			coords := make([]any, len(sw.axes))
			rem := i
			for a := len(sw.axes) - 1; a >= 0; a-- {
				n := len(sw.axes[a].Values)
				coords[a] = sw.axes[a].Values[rem%n]
				rem /= n
			}
			pts[i] = Point{Index: i, Coords: coords}
		}
		sw.grid = pts
	})
	return sw.grid
}

// ShardTiming records one shard's — or, in a distributed run, one
// remote worker's — share of a sweep run.
type ShardTiming struct {
	// Shard is the shard index.
	Shard int `json:"shard"`
	// Worker names the participant: "shard-N" for in-process shards,
	// the sticky worker ID for remote workers.
	Worker string `json:"worker,omitempty"`
	// Points is the number of grid points the shard evaluated.
	Points int `json:"points"`
	// ElapsedNS is the shard's wall-clock time in nanoseconds.
	ElapsedNS int64 `json:"elapsed_ns"`
}

// Elapsed returns the shard's wall-clock time.
func (st ShardTiming) Elapsed() time.Duration { return time.Duration(st.ElapsedNS) }

// CountWorkers counts the participants that evaluated at least one
// grid point — the "workers" figure of -json envelopes and dist job
// statuses.
func CountWorkers(timings []ShardTiming) int {
	n := 0
	for _, t := range timings {
		if t.Points > 0 {
			n++
		}
	}
	return n
}

// ShardedReport is implemented by reports coming out of a sweep run: the
// merged scenario report plus the per-shard execution timings. Text and
// JSON delegate to the merged report, so sharding never changes the
// measurement record.
type ShardedReport interface {
	Report
	// ShardTimings reports each shard's point count and wall-clock time.
	ShardTimings() []ShardTiming
}

// sweepReport decorates the merged report with shard timings.
type sweepReport struct {
	Report
	timings []ShardTiming
}

// ShardTimings implements ShardedReport.
func (r *sweepReport) ShardTimings() []ShardTiming { return r.timings }

// Run implements Scenario: evaluate every grid point across shards and
// merge in grid order.
//
// Sharding: opts.Shards bounds the shard count (0 = GOMAXPROCS, capped
// at the number of points). Shards lease batches of points from a
// shared work-stealing queue (or the dispatcher installed by
// WithDispatcher) — a shard that drains its lease steals the next one,
// so uneven point costs no longer leave shards idle. Each shard runs on
// its own fresh testbed built from opts — except in shared mode
// (opts.Testbed non-nil), where every shard uses the one shared testbed
// so co-allocation stays common and the backbone counters keep
// accumulating across scenarios; shards then contend on the testbed's
// internal locks instead of running truly in parallel. A testbed passed
// through the tb argument alone serves an unsharded run (the engine's
// fresh-per-scenario testbed); to share one across shards it must come
// through WithTestbed.
//
// Cancellation stops shards between points and Run returns ctx's error;
// a panicking point is contained and reported as that point's error.
// The first error in grid order wins. Dispatch policy changes only
// wall-clock time: results merge in grid order, so the report stays
// byte-identical whatever the shard count or dispatcher.
func (sw *Sweep) Run(ctx context.Context, tb *Testbed, opts Options) (Report, error) {
	pts := sw.Points()
	if len(pts) == 0 {
		return nil, fmt.Errorf("core: sweep %q has an empty grid", sw.name)
	}
	shards := opts.Shards
	if shards <= 0 {
		shards = runtime.GOMAXPROCS(0)
		// An explicit WithWorkers bound caps total engine concurrency;
		// don't let the default shard fan-out exceed it (an explicit
		// WithShards still may).
		if opts.Workers > 0 && opts.Workers < shards {
			shards = opts.Workers
		}
	}
	if shards > len(pts) {
		shards = len(pts)
	}
	// Shard testbeds are built from the sweep run's configuration; a
	// testbed handed in by the caller fixes that configuration for
	// every shard (the engine builds none for sweeps, so tb is non-nil
	// only for direct callers and shared runs).
	shardCfg := Config{WAN: opts.WAN, Extensions: opts.Extensions, Kernels: opts.Kernels, Intra: opts.Intra}
	if tb != nil {
		shardCfg = tb.Cfg
	}

	maker := opts.Dispatcher
	if maker == nil {
		maker = NewWorkStealingDispatcher
	}
	run := NewSweepRun(sw, opts, maker(len(pts), shards), shards)
	// Cancellation closes the dispatcher, unblocking shards waiting on
	// Next; the per-point ctx check records the error for points still
	// held in leases.
	stop := context.AfterFunc(ctx, run.d.Close)
	defer stop()
	var wg sync.WaitGroup
	for s := 0; s < shards; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			shardTb := opts.Testbed // shared mode: every shard uses the one testbed
			if shardTb == nil && shards == 1 {
				shardTb = tb // unsharded: any testbed the caller handed in
			}
			if shardTb == nil && !sw.noTestbed {
				shardTb = New(shardCfg)
			}
			run.RunShard(ctx, s, fmt.Sprintf("shard-%d", s), shardTb)
		}(s)
	}
	wg.Wait()
	return run.Report(ctx)
}

// runOnePoint evaluates a single grid point with panic containment, so
// one bad point fails the sweep with a usable error instead of tearing
// down the whole worker pool.
func (sw *Sweep) runOnePoint(ctx context.Context, tb *Testbed, opts Options, pt Point) (res any, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("point panicked: %v", r)
		}
		tb.flushPDES()
	}()
	return sw.runPoint(ctx, tb, opts, pt)
}

// NewShardTestbed builds the fresh per-shard (or, remotely, per-lease)
// testbed a sweep's points run on, or nil for sweeps that declared
// NoShardTestbed. The coordinator and workers of internal/dist use it
// so their testbeds match what Sweep.Run would have built locally.
func (sw *Sweep) NewShardTestbed(opts Options) *Testbed {
	if sw.noTestbed {
		return nil
	}
	return New(Config{WAN: opts.WAN, Extensions: opts.Extensions, Kernels: opts.Kernels, Intra: opts.Intra})
}

// ------------------------------------------------------- executor core --

// SweepRun is one in-flight evaluation of a sweep's grid: the results
// array, the dispatcher feeding it, and the per-participant timings.
// Sweep.Run drives it with in-process shards only; the internal/dist
// coordinator additionally delivers remotely evaluated leases into the
// same run, so local shards and remote workers steal from one queue.
type SweepRun struct {
	sw   *Sweep
	opts Options
	pts  []Point
	d    Dispatcher

	// OnPoint, when set before the run starts, observes every freshly
	// recorded error-free point result — local shard evaluations,
	// streamed remote points and completed leases alike, but not
	// Prefill (those results came from the observer's own store). The
	// coordinator uses it to persist each point the moment it exists, so
	// a crash loses at most the points still being computed. Called
	// outside the run's lock, possibly from several goroutines at once.
	OnPoint func(i int, val any)

	mu      sync.Mutex
	results []any
	errs    []error
	visited []bool
	local   []ShardTiming           // one slot per in-process shard
	remote  map[string]*ShardTiming // aggregated per remote worker
	order   []string                // remote workers in first-delivery order
}

// NewSweepRun prepares an execution of sw's grid with localShards
// in-process shard slots. The dispatcher d hands out the leases; it
// must have been built for len(sw.Points()) points.
func NewSweepRun(sw *Sweep, opts Options, d Dispatcher, localShards int) *SweepRun {
	pts := sw.Points()
	return &SweepRun{
		sw: sw, opts: opts, pts: pts, d: d,
		results: make([]any, len(pts)),
		errs:    make([]error, len(pts)),
		visited: make([]bool, len(pts)),
		local:   make([]ShardTiming, localShards),
		remote:  make(map[string]*ShardTiming),
	}
}

// Dispatcher returns the queue feeding this run (the coordinator leases
// from it on behalf of remote workers).
func (r *SweepRun) Dispatcher() Dispatcher { return r.d }

// RunShard is one in-process shard loop: lease points, evaluate them on
// tb, complete the lease, repeat until the grid is drained. shard is
// the timing slot index, worker the dispatch identity.
func (r *SweepRun) RunShard(ctx context.Context, shard int, worker string, tb *Testbed) {
	//gtwvet:ignore determinism shard timing is engine telemetry; the merged report is built from point results only and never includes it
	start := time.Now()
	points := 0
	for {
		l, ok := r.d.Next(worker)
		if !ok {
			break
		}
		//gtwvet:ignore determinism lease timing is engine telemetry; excluded from report bytes
		leaseStart := time.Now()
		for i := l.Lo; i < l.Hi; i++ {
			var res any
			var err error
			if err = ctx.Err(); err == nil {
				res, err = r.sw.runOnePoint(ctx, tb, r.opts, r.pts[i])
			}
			r.mu.Lock()
			r.results[i], r.errs[i] = res, err
			r.visited[i] = true
			r.mu.Unlock()
			if r.OnPoint != nil && err == nil {
				r.OnPoint(i, res)
			}
		}
		points += l.Points()
		r.d.Complete(l, time.Since(leaseStart))
	}
	elapsed := time.Since(start).Nanoseconds()
	if elapsed < 1 {
		elapsed = 1
	}
	r.mu.Lock()
	if shard >= 0 && shard < len(r.local) {
		r.local[shard] = ShardTiming{Shard: shard, Worker: worker, Points: points, ElapsedNS: elapsed}
	}
	r.mu.Unlock()
}

// Deliver records a remotely evaluated lease: one result or error
// string per point of [l.Lo, l.Hi), in grid order. The lease is
// completed against the dispatcher; a lease that is no longer
// outstanding (duplicate upload, or expired and re-run elsewhere) is
// ignored and Deliver reports false.
func (r *SweepRun) Deliver(l Lease, vals []any, errStrs []string, elapsed time.Duration) bool {
	if len(vals) != l.Points() || len(errStrs) != l.Points() {
		return false
	}
	// Claim the lease first: Complete is the idempotency point, and it
	// refuses leases that already completed or were requeued.
	if !r.claim(l, elapsed) {
		return false
	}
	r.mu.Lock()
	for k := 0; k < l.Points(); k++ {
		i := l.Lo + k
		r.results[i] = vals[k]
		if errStrs[k] != "" {
			r.errs[i] = fmt.Errorf("worker %s: %s", l.Worker, errStrs[k])
		} else {
			r.errs[i] = nil
		}
		r.visited[i] = true
	}
	t := r.remote[l.Worker]
	if t == nil {
		t = &ShardTiming{Worker: l.Worker}
		r.remote[l.Worker] = t
		r.order = append(r.order, l.Worker)
	}
	t.Points += l.Points()
	t.ElapsedNS += elapsed.Nanoseconds()
	r.mu.Unlock()
	if r.OnPoint != nil {
		for k := 0; k < l.Points(); k++ {
			if errStrs[k] == "" {
				r.OnPoint(l.Lo+k, vals[k])
			}
		}
	}
	return true
}

// Prefill records a point result obtained outside this run — the
// coordinator's content-addressed point store — before dispatch begins.
// Prefilled points must also be marked done in the dispatcher
// (NewWorkStealingDispatcherSkipping), so they are never leased.
func (r *SweepRun) Prefill(i int, val any) {
	r.mu.Lock()
	r.results[i] = val
	r.errs[i] = nil
	r.visited[i] = true
	r.mu.Unlock()
}

// DeliverPoint records one point of an outstanding lease, streamed by a
// remote worker before the lease completes. It does not touch the
// dispatcher: the lease either completes normally later (Deliver) or
// expires, in which case Abandon credits the streamed points and
// requeues only the unfinished tail. Reports false for an index outside
// the lease.
func (r *SweepRun) DeliverPoint(l Lease, index int, val any, errStr string) bool {
	if index < l.Lo || index >= l.Hi {
		return false
	}
	r.mu.Lock()
	r.results[index] = val
	if errStr != "" {
		r.errs[index] = fmt.Errorf("worker %s: %s", l.Worker, errStr)
	} else {
		r.errs[index] = nil
	}
	r.visited[index] = true
	r.mu.Unlock()
	if r.OnPoint != nil && errStr == "" {
		r.OnPoint(index, val)
	}
	return true
}

// Abandon retires a lease whose worker died, crediting the points it
// already streamed (finished[k] covers point l.Lo+k) and requeueing
// only the unfinished tail, so a worker lost late in a lease costs only
// its unstreamed points. A nil or all-false finished degrades to a full
// Requeue.
func (r *SweepRun) Abandon(l Lease, finished []bool) {
	partial := false
	for _, f := range finished {
		if f {
			partial = true
			break
		}
	}
	if partial && len(finished) == l.Points() {
		if pr, ok := r.d.(partialRequeuer); ok {
			pr.RequeuePartial(l, finished)
			return
		}
	}
	r.d.Requeue(l)
}

// Progress reports how many grid points have a recorded result (from
// any path: local shards, streamed points, completed leases, prefills)
// out of the grid total.
func (r *SweepRun) Progress() (done, total int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, v := range r.visited {
		if v {
			done++
		}
	}
	return done, len(r.visited)
}

// Values snapshots the per-point results; ok[i] is true where point i
// completed without error. The coordinator uses it to persist freshly
// computed points into its store after a run.
func (r *SweepRun) Values() (vals []any, ok []bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	vals = make([]any, len(r.results))
	ok = make([]bool, len(r.results))
	copy(vals, r.results)
	for i := range r.results {
		ok[i] = r.visited[i] && r.errs[i] == nil
	}
	return vals, ok
}

// claim completes l against the dispatcher and reports whether this
// call was the one that retired it (false: duplicate or expired).
func (r *SweepRun) claim(l Lease, elapsed time.Duration) bool {
	if cr, ok := r.d.(completeReporter); ok {
		return cr.completeReport(l, elapsed)
	}
	r.d.Complete(l, elapsed)
	return true
}

// Wait blocks until every grid point has completed or ctx is done.
func (r *SweepRun) Wait(ctx context.Context) error {
	select {
	case <-r.d.Done():
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Timings returns the per-participant timings: in-process shards first
// (by slot), then remote workers in first-delivery order, with Shard
// indices assigned sequentially.
func (r *SweepRun) Timings() []ShardTiming {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]ShardTiming, 0, len(r.local)+len(r.remote))
	out = append(out, r.local...)
	for _, w := range r.order {
		t := *r.remote[w]
		t.Shard = len(out)
		out = append(out, t)
	}
	return out
}

// Report merges the results in grid order and decorates the merged
// report with the run's timings. The first error in grid order wins; a
// point never evaluated (the run was cancelled or abandoned) reports
// ctx's error if there is one.
func (r *SweepRun) Report(ctx context.Context) (Report, error) {
	r.mu.Lock()
	for i := range r.pts {
		err := r.errs[i]
		if err == nil && !r.visited[i] {
			if err = ctx.Err(); err == nil {
				err = fmt.Errorf("point never evaluated (dispatch abandoned)")
			}
		}
		if err != nil {
			r.mu.Unlock()
			return nil, fmt.Errorf("core: sweep %q point %d: %w", r.sw.name, i, err)
		}
	}
	results := make([]any, len(r.results))
	copy(results, r.results)
	r.mu.Unlock()
	rep, err := r.sw.merge(r.opts, results)
	if err != nil {
		return nil, err
	}
	return &sweepReport{Report: rep, timings: r.Timings()}, nil
}

// --------------------------------------------------- distributed wire --

// WirePoint declares the concrete type a point result decodes into when
// it travels between a remote worker and the coordinator (JSON over
// HTTP). proto is a zero value of the per-point result type — e.g.
// WirePoint(Figure1Row{}). Sweeps without a wire codec are not
// distributable and always run in-process. Returns the sweep for
// chaining, like NoShardTestbed.
func (sw *Sweep) WirePoint(proto any) *Sweep {
	wireType := reflect.TypeOf(proto)
	sw.encode = json.Marshal
	sw.decode = func(b []byte) (any, error) {
		pv := reflect.New(wireType)
		if err := json.Unmarshal(b, pv.Interface()); err != nil {
			return nil, fmt.Errorf("core: sweep %q: decoding point result: %w", sw.name, err)
		}
		return pv.Elem().Interface(), nil
	}
	return sw
}

// Distributable reports whether the sweep has a wire codec for its
// point results and so can run across remote workers.
func (sw *Sweep) Distributable() bool { return sw.decode != nil }

// EncodePoint marshals one point result for the wire (and for the
// coordinator's content-addressed point store).
func (sw *Sweep) EncodePoint(v any) ([]byte, error) {
	if sw.encode == nil {
		return json.Marshal(v)
	}
	return sw.encode(v)
}

// DecodePoint unmarshals one point result into the declared wire type,
// so MergeFunc's type assertions see the same concrete type a local
// evaluation would have produced. encoding/json round-trips float64
// exactly (shortest-representation encoding), which is what keeps a
// distributed report byte-identical to a local one.
func (sw *Sweep) DecodePoint(b []byte) (any, error) {
	if sw.decode == nil {
		return nil, fmt.Errorf("core: sweep %q has no wire codec (WirePoint not declared)", sw.name)
	}
	return sw.decode(b)
}

// RunLease evaluates grid points [lo, hi) the way a non-streaming
// remote worker does: on a fresh testbed built for this lease (nil for
// NoShardTestbed sweeps), results and error strings in grid order.
// Panics are contained per point, like in-process shards. (The real
// worker streams instead: EvalPoint per point on its cached testbed.)
func (sw *Sweep) RunLease(ctx context.Context, opts Options, lo, hi int) ([]any, []string, error) {
	pts := sw.Points()
	if lo < 0 || hi > len(pts) || lo >= hi {
		return nil, nil, fmt.Errorf("core: sweep %q: lease [%d,%d) outside grid of %d points", sw.name, lo, hi, len(pts))
	}
	tb := sw.NewShardTestbed(opts)
	vals := make([]any, hi-lo)
	errStrs := make([]string, hi-lo)
	for i := lo; i < hi; i++ {
		if err := ctx.Err(); err != nil {
			return nil, nil, err
		}
		res, err := sw.runOnePoint(ctx, tb, opts, pts[i])
		vals[i-lo] = res
		if err != nil {
			errStrs[i-lo] = err.Error()
		}
	}
	return vals, errStrs, nil
}

// EvalPoint evaluates the single grid point at index i on tb, with the
// same panic containment an in-process shard applies — the unit the
// streaming worker uploads as soon as it finishes.
func (sw *Sweep) EvalPoint(ctx context.Context, tb *Testbed, opts Options, i int) (any, error) {
	pts := sw.Points()
	if i < 0 || i >= len(pts) {
		return nil, fmt.Errorf("core: sweep %q: point %d outside grid of %d points", sw.name, i, len(pts))
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return sw.runOnePoint(ctx, tb, opts, pts[i])
}

// NeedsShardTestbed reports whether the sweep's points run on a
// shard-built testbed (false after NoShardTestbed).
func (sw *Sweep) NeedsShardTestbed() bool { return !sw.noTestbed }

// ----------------------------------------------- content addressing --

// OptField names one cross-machine Options field for PointDeps.
type OptField string

// The Options fields a point's content address can depend on.
const (
	OptWAN        OptField = "wan"
	OptExtensions OptField = "ext"
	OptPEs        OptField = "pes"
	OptFrames     OptField = "frames"
	OptFlows      OptField = "flows"
)

// allOptFields is the conservative default: every wire field is assumed
// to influence every point.
var allOptFields = []OptField{OptWAN, OptExtensions, OptPEs, OptFrames, OptFlows}

// PointDeps declares which Options fields the sweep's points actually
// read — directly, or through the shard testbed they run on. It narrows
// each point's content address, so jobs that differ only in irrelevant
// options (say, Frames for a sweep that never reads it) reuse each
// other's finished points in the coordinator's store. Calling it with
// no arguments declares the points option-independent. The default
// (never called) keys points on every wire field: always correct,
// least reuse. Returns the sweep for chaining, like NoShardTestbed.
func (sw *Sweep) PointDeps(fields ...OptField) *Sweep {
	sw.keyDeps = append([]OptField{}, fields...)
	return sw
}

// PointKey returns the content address of one grid point: a hash of the
// scenario name, the point's grid index and coordinates, and the
// declared option dependencies. Two jobs whose keys match are asking
// for the same computation, so a finished point's wire bytes can be
// served to either — the cross-job reuse behind the coordinator's point
// store. The index is the authoritative discriminator within a grid
// (axis values need not marshal distinctly); coordinates and options
// guard against grids or parameters changing between submissions.
//
// The key format is a persistence contract: the coordinator's point
// store survives restarts (internal/persist), so a key computed by one
// process must match the key the restarted process computes for the
// same point — which it does, because every input is deterministic
// (registration-ordered axis values, json.Marshal's stable field order
// and shortest-float encoding, and the fixed dep spelling above).
// Changing the format silently orphans every persisted point;
// TestPointKeyStableAcrossProcesses pins it.
func (sw *Sweep) PointKey(opts Options, pt Point) string {
	coords, err := json.Marshal(pt.Coords)
	if err != nil {
		coords = []byte("unmarshalable")
	}
	deps := sw.keyDeps
	if deps == nil {
		deps = allOptFields
	}
	var b strings.Builder
	b.WriteString(sw.name)
	for _, f := range deps {
		switch f {
		case OptWAN:
			fmt.Fprintf(&b, "|wan=%d", int(opts.WAN))
		case OptExtensions:
			fmt.Fprintf(&b, "|ext=%t", opts.Extensions)
		case OptPEs:
			fmt.Fprintf(&b, "|pes=%d", opts.PEs)
		case OptFrames:
			fmt.Fprintf(&b, "|frames=%d", opts.Frames)
		case OptFlows:
			fmt.Fprintf(&b, "|flows=%d", opts.Flows)
		}
	}
	fmt.Fprintf(&b, "|pt=%d:%s", pt.Index, coords)
	sum := sha256.Sum256([]byte(b.String()))
	return hex.EncodeToString(sum[:])
}
