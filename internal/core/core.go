// Package core models the Gigabit Testbed West itself: the Figure-1
// topology joining the Research Centre Jülich and the GMD in Sankt
// Augustin over a 2.4 Gbit/s ATM/SDH link (OC-12 in the first year),
// the supercomputers attached through HiPPI-ATM gateway workstations,
// the 622/155 Mbit/s host attachments, the section-5 extension sites,
// and a simple co-allocation facility for distributed sessions (the
// "simultaneous resource allocation" problem the conclusions raise).
//
// The testbed is the substrate every experiment driver in this
// repository runs on; the root package gtw re-exports it as the public
// API.
package core

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/atm"
	"repro/internal/hippi"
	"repro/internal/machine"
	"repro/internal/netsim"
	"repro/internal/sim"
	"repro/internal/sim/pdes"
	"repro/internal/tcpsim"
)

// ATMFramer frames IP packets as Classical IP over AAL5/ATM.
type ATMFramer struct{}

// WireSize implements netsim.Framer.
func (ATMFramer) WireSize(n int) int { return atm.CLIPWireBytes(n) }

// Name implements netsim.Framer.
func (ATMFramer) Name() string { return "atm-clip" }

// HiPPIFramer charges HiPPI burst framing and connection overhead by
// converting the channel occupancy back into equivalent wire bytes at
// the 800 Mbit/s signalling rate.
type HiPPIFramer struct{}

// WireSize implements netsim.Framer.
func (HiPPIFramer) WireSize(n int) int {
	d := hippi.TransferTime(n)
	return int(d.Seconds() * hippi.SignallingRate / 8)
}

// Name implements netsim.Framer.
func (HiPPIFramer) Name() string { return "hippi" }

// Config selects the testbed generation.
type Config struct {
	// WAN is the backbone carrier: atm.OC12 for the 1997/98 setup,
	// atm.OC48 after the August 1998 upgrade (the default).
	WAN atm.OC
	// Extensions adds the section-5 sites (DLR, University of
	// Cologne, University of Bonn).
	Extensions bool
	// Kernels > 1 partitions the simulated network at WAN-link
	// boundaries and runs it as a conservative parallel simulation on
	// that many kernels (capped by the number of WAN-separated sites).
	// It is execution policy, not a model parameter: reports are
	// byte-identical at any value, so it never enters point keys or the
	// wire protocol.
	Kernels int
	// Intra additionally lets the partitioner cut inside a site at
	// switch boundaries when the WAN cut alone cannot reach Kernels
	// partitions (netsim.PartitionOptions.Intra). Execution policy like
	// Kernels: byte-identical reports, never in point keys.
	Intra bool
}

// Host names of the standard topology.
const (
	HostT3E600     = "cray-t3e-600"
	HostT3E1200    = "cray-t3e-1200"
	HostT90        = "cray-t90"
	HostGatewayFZJ = "sgi-o200-gw"
	HostUltra30    = "sun-ultra30-gw"
	HostWSJuelich  = "ws-juelich"
	HostSwitchFZJ  = "asx4000-fzj"

	HostSP2        = "ibm-sp2"
	HostOnyx2      = "sgi-onyx2"
	HostGatewayGMD = "sun-e5000-gw"
	HostWSGMD      = "ws-gmd"
	HostSwitchGMD  = "asx4000-gmd"

	// Additional 622 Mbit/s workstations ("several workstations via
	// 622 or 155 Mbit/s ATM interfaces", Figure 1) used for aggregate
	// backbone experiments, plus one 155 Mbit/s attach per site.
	HostWS2Juelich   = "ws2-juelich"
	HostWS3Juelich   = "ws3-juelich"
	HostWS4Juelich   = "ws4-juelich"
	HostWS2GMD       = "ws2-gmd"
	HostWS3GMD       = "ws3-gmd"
	HostWS4GMD       = "ws4-gmd"
	HostWS155Juelich = "ws155-juelich"
	HostWS155GMD     = "ws155-gmd"

	HostDLR      = "dlr"
	HostUniKoeln = "uni-koeln"
	HostUniBonn  = "uni-bonn"
)

// Testbed is a constructed Gigabit Testbed West instance.
//
// A Testbed may be shared by concurrently running scenarios (the
// WithTestbed mode of RunAll): the co-allocation map is guarded by
// allocMu, and every operation that advances the simulation kernel or
// reads its counters (TCPTransfer, RTT, PathMTU, BackboneUtilization,
// BackboneWireBytes) serialises on simMu. Shared scenarios therefore
// interleave their transfers on one testbed — co-allocation is truly
// shared and the backbone counters accumulate across all of them —
// but each transfer still runs on an otherwise idle simulated network;
// in-simulator bandwidth contention between two flows only happens
// when one driver starts both (see BackboneAggregate, MixedTraffic).
// Code that reaches into K or Net directly must have the testbed to
// itself.
type Testbed struct {
	Cfg      Config
	K        *sim.Kernel
	Net      *netsim.Network
	hosts    map[string]*netsim.Node
	machines map[string]machine.Spec
	alloc    map[string]string // host -> session owner
	backbone *netsim.Link

	allocMu sync.Mutex // guards alloc
	simMu   sync.Mutex // serialises kernel access and counter reads

	pdesPrev pdes.Stats // last snapshot flushed into the PDES aggregate
}

// propDelayWAN is the one-way propagation delay of the ~100 km
// Jülich - Sankt Augustin fiber (~5 us/km).
const propDelayWAN = 500 * time.Microsecond

// lanDelay is the one-way delay of campus links.
const lanDelay = 10 * time.Microsecond

// New builds the testbed.
func New(cfg Config) *Testbed {
	if cfg.WAN == 0 {
		cfg.WAN = atm.OC48
	}
	k := sim.NewKernel()
	n := netsim.New(k)
	tb := &Testbed{
		Cfg: cfg, K: k, Net: n,
		hosts:    make(map[string]*netsim.Node),
		machines: make(map[string]machine.Spec),
		alloc:    make(map[string]string),
	}
	add := func(name string, spec *machine.Spec, opts ...func(*netsim.Node)) *netsim.Node {
		nd := n.AddNode(name, opts...)
		tb.hosts[name] = nd
		if spec != nil {
			tb.machines[name] = *spec
		}
		return nd
	}
	gw := hippi.DefaultGateway("gw")

	// --- Jülich ---
	swFZJ := add(HostSwitchFZJ, nil, netsim.WithForwardCost(5*time.Microsecond, 16e9))
	t3e600Spec := machine.CrayT3E600()
	t3e1200Spec := machine.CrayT3E1200()
	t90Spec := machine.CrayT90()
	// The Cray hosts' TCP/IP stacks sustain ~435 Mbit/s (the ">430
	// Mbit/s within the local Cray complex" measurement).
	t3e600 := add(HostT3E600, &t3e600Spec, netsim.WithHostBps(435e6))
	t3e1200 := add(HostT3E1200, &t3e1200Spec, netsim.WithHostBps(435e6))
	t90 := add(HostT90, &t90Spec, netsim.WithHostBps(435e6))
	gwFZJ := add(HostGatewayFZJ, nil, netsim.WithForwardCost(gw.PerPacket, gw.CopyBps))
	ultra30 := add(HostUltra30, nil, netsim.WithForwardCost(gw.PerPacket, gw.CopyBps))
	wsFZJ := add(HostWSJuelich, nil)

	hippiLink := func(a, b *netsim.Node) {
		n.Connect(a, b, netsim.LinkConfig{
			Name: a.Name + "-" + b.Name, Bps: hippi.SignallingRate,
			Delay: lanDelay, MTU: atm.MaxCLIPMTU, Framer: HiPPIFramer{},
			QueueBytes: 32 << 20,
		})
	}
	atm622 := func(a, b *netsim.Node) {
		n.Connect(a, b, netsim.LinkConfig{
			Name: a.Name + "-" + b.Name, Bps: atm.OC12.PayloadRate(),
			Delay: lanDelay, MTU: atm.MaxCLIPMTU, Framer: ATMFramer{},
			QueueBytes: 32 << 20,
		})
	}
	// Local Cray HiPPI complex: the three Crays share a HiPPI fabric;
	// the gateways bridge it to ATM.
	hippiLink(t3e600, t3e1200)
	hippiLink(t3e600, gwFZJ)
	hippiLink(t3e1200, ultra30)
	hippiLink(t90, gwFZJ)
	atm622(gwFZJ, swFZJ)
	atm622(ultra30, swFZJ)
	atm622(wsFZJ, swFZJ)

	// --- Sankt Augustin ---
	swGMD := add(HostSwitchGMD, nil, netsim.WithForwardCost(5*time.Microsecond, 16e9))
	sp2Spec := machine.IBMSP2()
	onyxSpec := machine.SGIOnyx2()
	sp2 := add(HostSP2, &sp2Spec, netsim.WithHostBps(sp2Spec.IOBps))
	onyx2 := add(HostOnyx2, &onyxSpec)
	gwGMD := add(HostGatewayGMD, nil, netsim.WithForwardCost(gw.PerPacket, gw.CopyBps))
	wsGMD := add(HostWSGMD, nil)
	hippiLink(sp2, gwGMD)
	atm622(gwGMD, swGMD)
	atm622(onyx2, swGMD)
	atm622(wsGMD, swGMD)

	// Additional workstations on both sides.
	atm155 := func(a, b *netsim.Node) {
		n.Connect(a, b, netsim.LinkConfig{
			Name: a.Name + "-" + b.Name, Bps: atm.OC3.PayloadRate(),
			Delay: lanDelay, MTU: atm.DefaultCLIPMTU, Framer: ATMFramer{},
			QueueBytes: 16 << 20,
		})
	}
	for _, name := range []string{HostWS2Juelich, HostWS3Juelich, HostWS4Juelich} {
		atm622(add(name, nil), swFZJ)
	}
	for _, name := range []string{HostWS2GMD, HostWS3GMD, HostWS4GMD} {
		atm622(add(name, nil), swGMD)
	}
	atm155(add(HostWS155Juelich, nil), swFZJ)
	atm155(add(HostWS155GMD, nil), swGMD)

	// --- WAN backbone ---
	tb.backbone = n.Connect(swFZJ, swGMD, netsim.LinkConfig{
		Name: "gtw-backbone", Bps: cfg.WAN.PayloadRate(),
		Delay: propDelayWAN, MTU: atm.MaxCLIPMTU, Framer: ATMFramer{},
		QueueBytes: 64 << 20,
	})

	// --- Extensions (section 5) ---
	if cfg.Extensions {
		dlr := add(HostDLR, nil)
		koeln := add(HostUniKoeln, nil)
		bonn := add(HostUniBonn, nil)
		// Dark fibre DLR / Cologne to the GMD.
		atm622(dlr, swGMD)
		atm622(koeln, swGMD)
		// New 622 Mbit/s ATM link University of Bonn - GMD.
		atm622(bonn, swGMD)
	}

	n.ComputeRoutes()
	if cfg.Kernels > 1 {
		n.PartitionOpt(netsim.PartitionOptions{Kernels: cfg.Kernels, Intra: cfg.Intra})
		if pdesTelemetry.Load() {
			n.SetBlockedTelemetry(true)
		}
	}
	return tb
}

// HostNames lists all hosts (sorted).
func (tb *Testbed) HostNames() []string {
	out := make([]string, 0, len(tb.hosts))
	for name := range tb.hosts {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Host resolves a host name to its network node.
func (tb *Testbed) Host(name string) (netsim.NodeID, error) {
	nd, ok := tb.hosts[name]
	if !ok {
		return 0, fmt.Errorf("core: unknown host %q", name)
	}
	return nd.ID, nil
}

// Machine reports the performance model of a host, if it is a modeled
// supercomputer.
func (tb *Testbed) Machine(name string) (machine.Spec, bool) {
	s, ok := tb.machines[name]
	return s, ok
}

// TCPTransfer runs a simulated TCP bulk transfer between two named
// hosts and reports the result.
func (tb *Testbed) TCPTransfer(src, dst string, nbytes int64, cfg tcpsim.Config) (tcpsim.Result, error) {
	a, err := tb.Host(src)
	if err != nil {
		return tcpsim.Result{}, err
	}
	b, err := tb.Host(dst)
	if err != nil {
		return tcpsim.Result{}, err
	}
	tb.simMu.Lock()
	defer tb.simMu.Unlock()
	return tcpsim.Transfer(tb.Net, a, b, nbytes, cfg)
}

// RTT measures the small-message round-trip time between two hosts.
func (tb *Testbed) RTT(src, dst string) (time.Duration, error) {
	a, err := tb.Host(src)
	if err != nil {
		return 0, err
	}
	b, err := tb.Host(dst)
	if err != nil {
		return 0, err
	}
	tb.simMu.Lock()
	defer tb.simMu.Unlock()
	return netsim.Ping(tb.Net, a, b, 64, 64), nil
}

// PathMTU reports the path MTU between two named hosts.
func (tb *Testbed) PathMTU(src, dst string) (int, error) {
	a, err := tb.Host(src)
	if err != nil {
		return 0, err
	}
	b, err := tb.Host(dst)
	if err != nil {
		return 0, err
	}
	tb.simMu.Lock()
	defer tb.simMu.Unlock()
	return tb.Net.PathMTU(a, b)
}

// Reserve claims exclusive use of the named hosts for a session — the
// co-allocation every distributed experiment needed (up to 5 computers
// and an MRI scanner simultaneously for the fMRI project). It either
// reserves all hosts or none.
func (tb *Testbed) Reserve(session string, hosts ...string) error {
	if session == "" {
		return fmt.Errorf("core: empty session name")
	}
	tb.allocMu.Lock()
	defer tb.allocMu.Unlock()
	for _, h := range hosts {
		if _, ok := tb.hosts[h]; !ok {
			return fmt.Errorf("core: unknown host %q", h)
		}
		if owner, busy := tb.alloc[h]; busy && owner != session {
			return fmt.Errorf("core: host %q already allocated to session %q", h, owner)
		}
	}
	for _, h := range hosts {
		tb.alloc[h] = session
	}
	return nil
}

// Release frees every host held by the session.
func (tb *Testbed) Release(session string) {
	tb.allocMu.Lock()
	defer tb.allocMu.Unlock()
	for h, owner := range tb.alloc {
		if owner == session {
			delete(tb.alloc, h)
		}
	}
}

// Allocations reports the current host -> session assignment.
func (tb *Testbed) Allocations() map[string]string {
	tb.allocMu.Lock()
	defer tb.allocMu.Unlock()
	out := make(map[string]string, len(tb.alloc))
	for h, s := range tb.alloc {
		out[h] = s
	}
	return out
}

// BackboneUtilization reports the WAN link's busy fraction over the
// simulation so far (both directions; 2.0 = saturated duplex).
func (tb *Testbed) BackboneUtilization() float64 {
	tb.simMu.Lock()
	defer tb.simMu.Unlock()
	return tb.backbone.Utilization(tb.Net.Now())
}

// BackboneWireBytes reports total framed bytes carried on the WAN link.
func (tb *Testbed) BackboneWireBytes() int64 {
	tb.simMu.Lock()
	defer tb.simMu.Unlock()
	return tb.backbone.WireBytes()
}
