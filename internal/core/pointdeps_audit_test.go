package core_test

import (
	"fmt"
	"reflect"
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/pointdeps"
)

// The pointdeps analyzer derives, from source, the Options fields each
// registered scenario's points actually read. This test pins the
// derived sets: editing a point function so it reads a new field (or
// stops reading one) fails here loudly, pointing straight at the
// PointDeps declaration that must move with it — the ROADMAP's "derive
// PointDeps, catch stale declarations" item, closed mechanically.
//
// `deps` strings are ordered wan, ext, pes, frames, flows (the
// canonical OptField order). "∀" in the table below would mean the
// derivation escaped and went conservative; no registration should.
func TestPointDepsDerivedSetsArePinned(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the whole module")
	}
	prog, err := analysis.Load(".", "repro/...")
	if err != nil {
		t.Fatalf("loading module: %v", err)
	}
	entries, err := pointdeps.Audit(prog, pointdeps.Config{})
	if err != nil {
		t.Fatalf("audit: %v", err)
	}

	type pinned struct {
		kind     string
		declared []string // nil = no PointDeps declaration (keys on all fields)
		derived  []string
	}
	want := map[string]pinned{
		"figure1-throughput":    {"sweep", []string{"wan", "ext"}, []string{"wan", "ext"}},
		"backbone-aggregate":    {"sweep", []string{"flows"}, []string{"flows"}},
		"mixed-traffic":         {"sweep", []string{}, []string{}},
		"fmri-pe-sweep":         {"sweep", []string{"frames"}, []string{"frames"}},
		"table1-model":          {"scenario", nil, []string{}},
		"figure2-endtoend":      {"scenario", nil, []string{"wan", "ext", "pes", "frames"}},
		"figure3-overlay":       {"scenario", nil, []string{}},
		"figure4-workbench":     {"scenario", nil, []string{"wan", "ext"}},
		"section3-applications": {"scenario", nil, []string{"wan", "ext"}},
		"fmri-dataflow":         {"scenario", nil, []string{"pes", "frames"}},
		"future-work":           {"scenario", nil, []string{}},
		"climate-coupled":       {"scenario", nil, []string{}},
		"groundwater-coupled":   {"scenario", nil, []string{}},
		"fsi-cocolib":           {"scenario", nil, []string{}},
		"meg-music":             {"scenario", nil, []string{}},
		"video-d1":              {"scenario", nil, []string{"frames"}},
		"fire-rt-session":       {"scenario", nil, []string{"frames"}},
		"client-fleet-unit":     {"sweep", []string{"frames"}, []string{"frames"}},
		"client-fleet":          {"scenario", nil, []string{"flows"}},
	}

	got := map[string]pointdeps.Entry{}
	for _, e := range entries {
		if _, dup := got[e.Name]; dup {
			t.Errorf("registration %q audited twice", e.Name)
		}
		got[e.Name] = e
	}

	for name, w := range want {
		e, ok := got[name]
		if !ok {
			t.Errorf("registration %q not found by the audit", name)
			continue
		}
		if e.Kind != w.kind {
			t.Errorf("%s: kind = %q, want %q", name, e.Kind, w.kind)
		}
		if !reflect.DeepEqual(e.Declared, w.declared) {
			t.Errorf("%s: declared = %v, want %v", name, e.Declared, w.declared)
		}
		if !reflect.DeepEqual(e.Derived, w.derived) {
			t.Errorf("%s: derived = %v, want %v\n%s", name, e.Derived, w.derived, moveHint(e))
		}
		if e.Escaped {
			t.Errorf("%s: derivation escaped (went conservative); point paths should stay within the module", name)
		}
	}
	for _, e := range entries {
		if _, ok := want[e.Name]; !ok {
			t.Errorf("unpinned registration %q (derived %v) — add it to this table", e.Name, e.Derived)
		}
	}
}

func moveHint(e pointdeps.Entry) string {
	return fmt.Sprintf("\tif the point function's reads changed on purpose, update both this table and the PointDeps(...) declaration at %s", e.Pos)
}
