package core

import (
	"strings"
	"testing"
	"time"

	"repro/internal/atm"
	"repro/internal/tcpsim"
)

func TestFramers(t *testing.T) {
	// ATM/CLIP: 9180-byte IP packet -> 192 cells -> 10176 wire bytes.
	if got := (ATMFramer{}).WireSize(9180); got != 192*53 {
		t.Errorf("ATM wire size = %d", got)
	}
	if (ATMFramer{}).Name() == "" || (HiPPIFramer{}).Name() == "" {
		t.Error("framers must be named")
	}
	// HiPPI: wire size reflects burst framing; efficiency near 1 for
	// big packets, worse for small ones.
	big := (HiPPIFramer{}).WireSize(1 << 20)
	if ratio := float64(big) / float64(1<<20); ratio < 1.0 || ratio > 1.1 {
		t.Errorf("HiPPI 1MiB expansion = %.3f", ratio)
	}
	small := (HiPPIFramer{}).WireSize(64)
	if ratio := float64(small) / 64; ratio < 2 {
		t.Errorf("HiPPI 64B expansion = %.2f, setup cost should dominate", ratio)
	}
}

func TestTopologyHosts(t *testing.T) {
	tb := New(Config{})
	names := tb.HostNames()
	for _, want := range []string{HostT3E600, HostT3E1200, HostT90, HostSP2, HostOnyx2,
		HostSwitchFZJ, HostSwitchGMD, HostGatewayFZJ, HostGatewayGMD} {
		found := false
		for _, n := range names {
			if n == want {
				found = true
			}
		}
		if !found {
			t.Errorf("host %q missing from topology", want)
		}
	}
	if _, err := tb.Host("no-such-host"); err == nil {
		t.Error("unknown host resolved")
	}
	if _, ok := tb.Machine(HostT3E600); !ok {
		t.Error("T3E has no machine model")
	}
	if _, ok := tb.Machine(HostSwitchFZJ); ok {
		t.Error("switch should not have a machine model")
	}
}

func TestExtensionsSites(t *testing.T) {
	tb := New(Config{Extensions: true})
	for _, h := range []string{HostDLR, HostUniKoeln, HostUniBonn} {
		if _, err := tb.Host(h); err != nil {
			t.Errorf("extension host %q missing", h)
		}
	}
	// Extension sites reach Jülich across the backbone.
	if _, err := tb.TCPTransfer(HostUniBonn, HostWSJuelich, 1<<20, tcpsim.Config{}); err != nil {
		t.Errorf("Bonn -> Jülich transfer failed: %v", err)
	}
	// Without extensions they do not exist.
	tb = New(Config{})
	if _, err := tb.Host(HostDLR); err == nil {
		t.Error("DLR present without extensions")
	}
}

func TestLocalCrayComplexThroughput(t *testing.T) {
	tb := New(Config{})
	res, err := tb.TCPTransfer(HostT3E600, HostT3E1200, 96<<20, tcpsim.Config{WindowBytes: 4 << 20})
	if err != nil {
		t.Fatal(err)
	}
	mbps := res.ThroughputBps / 1e6
	// Paper: "transfer rates of more than 430 Mbit/s are achieved
	// within the local Cray complex ... with an MTU of 64 KByte".
	if mbps < 420 || mbps > 450 {
		t.Errorf("local HiPPI TCP = %.1f Mbit/s, want ~430-440", mbps)
	}
}

func TestWANT3EToSP2Throughput(t *testing.T) {
	tb := New(Config{})
	res, err := tb.TCPTransfer(HostT3E600, HostSP2, 96<<20, tcpsim.Config{WindowBytes: 4 << 20})
	if err != nil {
		t.Fatal(err)
	}
	mbps := res.ThroughputBps / 1e6
	// Paper: "First measurements show a throughput of more than 260
	// Mbit/s between the Cray T3E in Jülich and the IBM SP2 ...
	// mainly due to the limitations of the I/O system of the
	// microchannel-based SP nodes."
	if mbps < 250 || mbps > 268 {
		t.Errorf("WAN T3E->SP2 = %.1f Mbit/s, want ~255-265", mbps)
	}
}

func TestWANRTTDominatedByPropagation(t *testing.T) {
	tb := New(Config{})
	rtt, err := tb.RTT(HostWSJuelich, HostWSGMD)
	if err != nil {
		t.Fatal(err)
	}
	// 2 x 500 us propagation plus switch hops.
	if rtt < time.Millisecond || rtt > 2*time.Millisecond {
		t.Errorf("WAN RTT = %v, want ~1.1 ms", rtt)
	}
}

func TestPathMTU(t *testing.T) {
	tb := New(Config{})
	mtu, err := tb.PathMTU(HostT3E600, HostSP2)
	if err != nil {
		t.Fatal(err)
	}
	if mtu != atm.MaxCLIPMTU {
		t.Errorf("path MTU = %d, want 64K end to end", mtu)
	}
}

func TestOC12vsOC48Backbone(t *testing.T) {
	// Workstation-to-workstation flows see the 622 attach either
	// way, but the OC-12 backbone is the narrower pipe in the 1997
	// configuration.
	tb12 := New(Config{WAN: atm.OC12})
	r12, err := tb12.TCPTransfer(HostWSJuelich, HostWSGMD, 64<<20, tcpsim.Config{WindowBytes: 4 << 20})
	if err != nil {
		t.Fatal(err)
	}
	tb48 := New(Config{WAN: atm.OC48})
	r48, err := tb48.TCPTransfer(HostWSJuelich, HostWSGMD, 64<<20, tcpsim.Config{WindowBytes: 4 << 20})
	if err != nil {
		t.Fatal(err)
	}
	if r48.ThroughputBps < r12.ThroughputBps {
		t.Errorf("OC-48 (%.0f) slower than OC-12 (%.0f)", r48.ThroughputBps/1e6, r12.ThroughputBps/1e6)
	}
}

func TestCoAllocation(t *testing.T) {
	tb := New(Config{})
	// The fMRI session: up to 5 computers simultaneously.
	err := tb.Reserve("fmri", HostT3E600, HostOnyx2, HostWSJuelich, HostGatewayFZJ, HostGatewayGMD)
	if err != nil {
		t.Fatal(err)
	}
	// A competing session cannot take the T3E.
	if err := tb.Reserve("climate", HostT3E600, HostSP2); err == nil {
		t.Error("double allocation permitted")
	}
	// The failed reservation must not have leaked partial holds.
	if owner := tb.Allocations()[HostSP2]; owner != "" {
		t.Errorf("SP2 leaked to %q after failed reservation", owner)
	}
	// Re-reserving within the same session is fine.
	if err := tb.Reserve("fmri", HostT3E600); err != nil {
		t.Errorf("re-reserve within session failed: %v", err)
	}
	tb.Release("fmri")
	if err := tb.Reserve("climate", HostT3E600, HostSP2); err != nil {
		t.Errorf("reserve after release failed: %v", err)
	}
	if err := tb.Reserve("", HostT90); err == nil {
		t.Error("empty session accepted")
	}
	if err := tb.Reserve("x", "bogus"); err == nil {
		t.Error("unknown host accepted")
	}
}

func TestFigure1Experiment(t *testing.T) {
	rows, err := Figure1Throughput()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) < 6 {
		t.Fatalf("%d rows", len(rows))
	}
	// Every row with a paper value must be within 15% of it (the
	// analytic backbone rows compare payload to line rate, skip).
	for _, r := range rows[:2] {
		if r.PaperMbps > 0 {
			ratio := r.Mbps / r.PaperMbps
			if ratio < 0.9 || ratio > 1.15 {
				t.Errorf("%s: %.1f vs paper %.0f Mbit/s", r.Path, r.Mbps, r.PaperMbps)
			}
		}
	}
	// MTU ordering: 64K > 9180 > 1500 on the workstation path.
	if !(rows[2].Mbps > rows[3].Mbps && rows[3].Mbps > rows[4].Mbps) {
		t.Errorf("MTU sweep not monotone: %.1f, %.1f, %.1f", rows[2].Mbps, rows[3].Mbps, rows[4].Mbps)
	}
	text := FormatFigure1(rows)
	if !strings.Contains(text, "Cray") {
		t.Error("format output incomplete")
	}
}

func TestFigure2Experiment(t *testing.T) {
	r, err := Figure2EndToEnd(256, 30)
	if err != nil {
		t.Fatal(err)
	}
	if r.TotalDelay >= 5 {
		t.Errorf("total delay %.2f s, paper promises < 5", r.TotalDelay)
	}
	if r.SafeTR != 3.0 {
		t.Errorf("safe TR = %.1f", r.SafeTR)
	}
	if r.Session.DroppedScans != 0 {
		t.Errorf("unpipelined session at TR=3 dropped %d", r.Session.DroppedScans)
	}
	if r.PipelinedSession.DroppedScans != 0 {
		t.Errorf("pipelined session at TR=2 dropped %d", r.PipelinedSession.DroppedScans)
	}
	if r.ScannerTransferMs <= 0 || r.ScannerTransferMs > 200 {
		t.Errorf("raw volume hop = %.1f ms", r.ScannerTransferMs)
	}
	if !strings.Contains(FormatFigure2(r), "total delay") {
		t.Error("format output incomplete")
	}
}

func TestFigure3Experiment(t *testing.T) {
	r, err := Figure3Overlay()
	if err != nil {
		t.Fatal(err)
	}
	if r.ActivatedVoxels == 0 {
		t.Error("no activation detected")
	}
	if r.PeakCorrelation < 0.7 {
		t.Errorf("peak correlation %.3f", r.PeakCorrelation)
	}
	if len(r.ROICourse) != r.Scans {
		t.Errorf("ROI course %d samples for %d scans", len(r.ROICourse), r.Scans)
	}
	if r.PNGBytes <= 0 {
		t.Error("no PNG produced")
	}
	if !strings.Contains(FormatFigure3(r), "peak r") {
		t.Error("format output incomplete")
	}
}

func TestFigure4Experiment(t *testing.T) {
	r, err := Figure4Workbench()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 3 {
		t.Fatalf("%d rows", len(r.Rows))
	}
	// The headline: < 8 fps on OC-12 classical IP.
	if r.Rows[0].FPS >= 8 || r.Rows[0].FPS < 6 {
		t.Errorf("OC-12 CLIP = %.2f fps, want in [6, 8)", r.Rows[0].FPS)
	}
	// Measured TCP streaming lands in the same regime.
	if r.StreamFPS >= 8 || r.StreamFPS < 5.5 {
		t.Errorf("measured stream = %.2f fps, want < 8", r.StreamFPS)
	}
	if r.MergeMs <= 0 || r.MIPMs <= 0 {
		t.Error("merge/MIP timings missing")
	}
	if !strings.Contains(FormatFigure4(r), "frames/s") {
		t.Error("format output incomplete")
	}
}

func TestSection3Experiment(t *testing.T) {
	rows, err := Section3Applications()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("%d rows", len(rows))
	}
	for _, r := range rows {
		if !r.OK {
			t.Errorf("application %q requirement not met: %s", r.App, r.Achieved)
		}
	}
	if !strings.Contains(FormatSection3(rows), "groundwater") {
		t.Error("format output incomplete")
	}
}
