package core

import (
	"bytes"
	"context"
	"fmt"
	"math"
	"strings"
	"time"

	"repro/internal/atm"
	"repro/internal/fire"
	"repro/internal/mri"
	"repro/internal/tcpsim"
	"repro/internal/video"
	"repro/internal/viz"
	"repro/internal/volume"
)

// This file contains the experiment drivers that regenerate the paper's
// quantitative content. Each driver has a testbed-accepting core
// (figure1Probe, figure2EndToEndOn, ...) used by the registered
// scenarios — so runs can share one contended testbed — plus a
// deprecated wrapper keeping the original one-shot signature, which
// builds private testbeds so old callers see unchanged behaviour.

// ---------------------------------------------------------------- F1 --

// Figure1Row is one path measurement of the testbed-performance
// experiment (the quantitative content of Figure 1 / section 2).
type Figure1Row struct {
	Path      string
	Src, Dst  string
	MTU       int // 0 = path MTU
	Mbps      float64
	PaperMbps float64 // 0 = no direct paper figure
	Note      string
}

// f1probe is one throughput probe of the figure-1 experiment.
type f1probe struct {
	path, src, dst string
	mtu            int
	paper          float64
	note           string
}

var f1probes = []f1probe{
	{"local Cray complex over HiPPI (64K MTU)", HostT3E600, HostT3E1200, 0, 430,
		"paper: >430 Mbit/s TCP/IP with 64 KByte MTU"},
	{"Cray T3E -> IBM SP2 over the WAN", HostT3E600, HostSP2, 0, 260,
		"paper: >260 Mbit/s, limited by SP2 microchannel I/O"},
	{"622 Mbit/s ATM workstations over the WAN (64K MTU)", HostWSJuelich, HostWSGMD, 0, 0,
		"approaches the OC-12 attach payload limit"},
	{"same path, default CLIP MTU (9180)", HostWSJuelich, HostWSGMD, 9180, 0,
		"per-packet costs start to matter"},
	{"same path, Ethernet-class MTU (1500)", HostWSJuelich, HostWSGMD, 1500, 0,
		"the case the 64 KByte MTU avoids"},
}

// figure1Probe runs one probe transfer on the given testbed.
func figure1Probe(tb *Testbed, p f1probe) (Figure1Row, error) {
	cfg := tcpsim.Config{WindowBytes: 4 << 20}
	if p.mtu != 0 {
		cfg.MSS = p.mtu - tcpsim.HeaderBytes
	}
	res, err := tb.TCPTransfer(p.src, p.dst, 96<<20, cfg)
	if err != nil {
		return Figure1Row{}, fmt.Errorf("core: figure-1 probe %q: %w", p.path, err)
	}
	return Figure1Row{
		Path: p.path, Src: p.src, Dst: p.dst, MTU: p.mtu,
		Mbps: res.ThroughputBps / 1e6, PaperMbps: p.paper, Note: p.note,
	}, nil
}

// figure1AnalyticRows returns the backbone capacity rows (no single
// host can fill OC-48; its capacity is an arithmetic property of
// SDH+ATM framing).
func figure1AnalyticRows() []Figure1Row {
	return []Figure1Row{
		{Path: "backbone capacity OC-12 (1997/98)", Mbps: atm.OC12.ATMPayloadRate() / 1e6,
			PaperMbps: 622, Note: "line 622.08; AAL5 payload after SDH+cell tax"},
		{Path: "backbone capacity OC-48 (since 8/1998)", Mbps: atm.OC48.ATMPayloadRate() / 1e6,
			PaperMbps: 2400, Note: "line 2488.32; AAL5 payload after SDH+cell tax"},
	}
}

// f1probeValues returns the probes as a sweep axis: each probe is one
// grid point of the figure1-throughput sweep.
func f1probeValues() []any {
	vals := make([]any, len(f1probes))
	for i, p := range f1probes {
		vals[i] = p
	}
	return vals
}

// Figure1Throughput measures the section-2 throughput observations on
// the simulated testbed, one fresh testbed per probe.
//
// Deprecated: use the "figure1-throughput" scenario via Run/RunAll.
func Figure1Throughput() ([]Figure1Row, error) {
	var rows []Figure1Row
	for _, p := range f1probes {
		row, err := figure1Probe(New(Config{}), p)
		if err != nil {
			return nil, err
		}
		rows = append(rows, row)
	}
	return append(rows, figure1AnalyticRows()...), nil
}

// FormatFigure1 renders the rows as a text table.
func FormatFigure1(rows []Figure1Row) string {
	var sb strings.Builder
	sb.WriteString("F1: testbed path performance (measured on the simulated testbed)\n")
	for _, r := range rows {
		paper := "      -"
		if r.PaperMbps > 0 {
			paper = fmt.Sprintf("%7.0f", r.PaperMbps)
		}
		fmt.Fprintf(&sb, "  %-52s %8.1f Mbit/s  paper %s  %s\n", r.Path, r.Mbps, paper, r.Note)
	}
	return sb.String()
}

// ---------------------------------------------------------------- F2 --

// Figure2Result reproduces the section-4 latency budget (Figure 2's
// dataflow, quantified in the text).
type Figure2Result struct {
	PEs         int
	Stages      fire.StageTimes
	TotalDelay  float64
	Unpipelined float64
	Pipelined   float64
	SafeTR      float64
	// ScannerTransferMs is the measured time to move one raw
	// 64x64x16 volume from the SP2-side or scanner host to the T3E
	// over the testbed (context for the 1.1 s transfer budget, which
	// is dominated by control-message round trips, not bytes).
	ScannerTransferMs float64
	Session           fire.SessionResult
	PipelinedSession  fire.SessionResult
}

// figure2EndToEndOn evaluates the latency budget at the given PE count,
// measuring the raw-volume hop on the given testbed.
func figure2EndToEndOn(ctx context.Context, tb *Testbed, pes, frames int) (Figure2Result, error) {
	if err := ctx.Err(); err != nil {
		return Figure2Result{}, err
	}
	model := fire.DefaultT3E600()
	st := fire.PaperStageTimes(model, pes)
	res := Figure2Result{
		PEs: pes, Stages: st,
		TotalDelay:  st.TotalDelay(),
		Unpipelined: st.UnpipelinedPeriod(),
		Pipelined:   st.PipelinedPeriod(),
		SafeTR:      fire.SafeTR(st.UnpipelinedPeriod()),
	}
	// Measure the raw-volume hop on the testbed (64x64x16 float32).
	vol := volume.New(64, 64, 16)
	tr, err := tb.TCPTransfer(HostWSJuelich, HostT3E600, int64(vol.Bytes()), tcpsim.Config{})
	if err != nil {
		return res, err
	}
	res.ScannerTransferMs = tr.Duration.Seconds() * 1000

	sess, err := fire.SimulateSession(st, mri.SafeTR, frames, false)
	if err != nil {
		return res, err
	}
	res.Session = sess
	pip, err := fire.SimulateSession(st, mri.TypicalTR, frames, true)
	if err != nil {
		return res, err
	}
	res.PipelinedSession = pip
	return res, nil
}

// Figure2EndToEnd evaluates the latency budget at the given PE count
// and simulates unpipelined and pipelined realtime sessions.
//
// Deprecated: use the "figure2-endtoend" scenario via Run/RunAll with
// WithPEs and WithFrames.
func Figure2EndToEnd(pes, frames int) (Figure2Result, error) {
	return figure2EndToEndOn(context.Background(), New(Config{}), pes, frames)
}

// FormatFigure2 renders the latency budget.
func FormatFigure2(r Figure2Result) string {
	var sb strings.Builder
	sb.WriteString("F2: realtime fMRI end-to-end budget (section 4)\n")
	fmt.Fprintf(&sb, "  scan -> RT-server      %.2f s (paper: ~1.5)\n", r.Stages.ScanToServer)
	fmt.Fprintf(&sb, "  transfers + control    %.2f s (paper: ~1.1)\n", r.Stages.Transfers)
	fmt.Fprintf(&sb, "  T3E processing (%3d PE) %.2f s (Table 1)\n", r.PEs, r.Stages.Compute)
	fmt.Fprintf(&sb, "  client display         %.2f s (paper: ~0.6)\n", r.Stages.Display)
	fmt.Fprintf(&sb, "  total delay            %.2f s (paper: < 5 s)\n", r.TotalDelay)
	fmt.Fprintf(&sb, "  unpipelined period     %.2f s (paper: 2.7 s) -> safe TR %.1f s (paper: 3 s)\n",
		r.Unpipelined, r.SafeTR)
	fmt.Fprintf(&sb, "  pipelined period       %.2f s (the unexploited improvement)\n", r.Pipelined)
	fmt.Fprintf(&sb, "  raw volume WAN hop     %.1f ms measured (bytes are not the 1.1 s bottleneck)\n",
		r.ScannerTransferMs)
	fmt.Fprintf(&sb, "  session @TR=3.0 unpipelined: %d frames, mean delay %.2f s, max %.2f s, drops %d\n",
		r.Session.Frames, r.Session.MeanDelay, r.Session.MaxDelay, r.Session.DroppedScans)
	fmt.Fprintf(&sb, "  session @TR=2.0 pipelined:   %d frames, mean delay %.2f s, max %.2f s, drops %d\n",
		r.PipelinedSession.Frames, r.PipelinedSession.MeanDelay, r.PipelinedSession.MaxDelay,
		r.PipelinedSession.DroppedScans)
	return sb.String()
}

// ---------------------------------------------------------------- F3 --

// Figure3Result reproduces the FIRE GUI content: the 2-D correlation
// overlay and an ROI time course from a synthetic measurement.
type Figure3Result struct {
	Scans           int
	ActivatedVoxels int
	PeakCorrelation float64
	ROICourse       []float64
	RenderMs        float64
	PNGBytes        int
}

// Figure3Overlay runs a small synthetic measurement through the
// analysis chain and renders the GUI overlay for the center slice.
// (No testbed involvement: pure analysis + rendering.)
func Figure3Overlay() (Figure3Result, error) {
	act := mri.Activation{CX: 32, CY: 30, CZ: 8, Radius: 5, Amplitude: 0.05, HRF: mri.DefaultHRF}
	ph := mri.NewPhantom(64, 64, 16, []mri.Activation{act})
	cfg := mri.ScanConfig{NX: 64, NY: 64, NZ: 16, TR: 2, NScans: 48, NoiseStd: 3, Seed: 42}
	sc := mri.NewScanner(ph, cfg)
	corr := fire.NewCorrelator(sc.Reference(0), 64, 64, 16)
	var series []*volume.Volume
	for {
		v := sc.Next()
		if v == nil {
			break
		}
		series = append(series, v)
		if err := corr.Add(v); err != nil {
			return Figure3Result{}, err
		}
	}
	m, err := corr.Map()
	if err != nil {
		return Figure3Result{}, err
	}
	res := Figure3Result{Scans: len(series)}
	clip := 0.5
	roi := make([]bool, m.Voxels())
	for i, v := range m.Data {
		if float64(v) >= clip {
			res.ActivatedVoxels++
			roi[i] = true
		}
		if float64(v) > res.PeakCorrelation {
			res.PeakCorrelation = float64(v)
		}
	}
	if res.ActivatedVoxels > 0 {
		course, err := fire.ROITimeCourse(series, roi)
		if err != nil {
			return res, err
		}
		res.ROICourse = course
	}
	//gtwvet:ignore determinism RenderMs reports measured wall-clock render cost (the paper's Fig. 3 metric); computed once per point, so shard-count byte-identity is unaffected
	start := time.Now()
	img, err := viz.RenderOverlay(ph.Anatomy, m, 8, clip)
	if err != nil {
		return res, err
	}
	res.RenderMs = float64(time.Since(start).Microseconds()) / 1000
	if err := viz.WritePNG(&discardCounter{&res.PNGBytes}, img); err != nil {
		return res, err
	}
	return res, nil
}

// discardCounter counts bytes written.
type discardCounter struct{ n *int }

func (d *discardCounter) Write(p []byte) (int, error) {
	*d.n += len(p)
	return len(p), nil
}

// FormatFigure3 renders the result.
func FormatFigure3(r Figure3Result) string {
	var sb strings.Builder
	sb.WriteString("F3: FIRE 2-D GUI content (overlay + ROI time course)\n")
	fmt.Fprintf(&sb, "  %d scans analysed, %d voxels above clip 0.5, peak r = %.3f\n",
		r.Scans, r.ActivatedVoxels, r.PeakCorrelation)
	fmt.Fprintf(&sb, "  overlay rendered in %.2f ms (%d PNG bytes); ROI course %d samples\n",
		r.RenderMs, r.PNGBytes, len(r.ROICourse))
	return sb.String()
}

// ---------------------------------------------------------------- F4 --

// Figure4Row is one workbench/3-D-visualization measurement.
type Figure4Row struct {
	Config string
	FPS    float64
	Paper  string
}

// Figure4Result covers the 3-D visualization pipeline: merge timing and
// the Responsive Workbench streaming rates.
type Figure4Result struct {
	MergeMs   float64
	MIPMs     float64
	Rows      []Figure4Row
	StreamFPS float64 // measured: frames over the simulated OC-12 path
	PNGBytes  int
	// PNG is the rendered maximum-intensity projection of the merged
	// head ("the light areas are regions of the brain that are
	// activated"); excluded from JSON, PNGBytes records its size.
	PNG []byte `json:"-"`
}

// figure4WorkbenchOn reproduces the section-4 visualization numbers,
// measuring the workbench stream on the given testbed.
func figure4WorkbenchOn(ctx context.Context, tb *Testbed) (Figure4Result, error) {
	var res Figure4Result
	if err := ctx.Err(); err != nil {
		return res, err
	}
	// Merge 64x64x16 functional data onto the 256x256x128
	// high-resolution anatomy (the pre-measurement scan). The
	// functional map carries a motor-cortex-like activation region —
	// not a lone voxel — so the rendered head shows "light areas ...
	// that are activated" as in the paper's figure.
	anatHi := mri.NewPhantom(256, 256, 128, nil).Anatomy
	corr := volume.New(64, 64, 16)
	const cx, cy, cz, radius = 24, 40, 10, 5.0
	for z := 0; z < 16; z++ {
		for y := 0; y < 64; y++ {
			for x := 0; x < 64; x++ {
				dx, dy, dz := float64(x-cx), float64(y-cy), float64(z-cz)
				d2 := dx*dx + dy*dy + dz*dz
				if d2 <= radius*radius {
					corr.Set(x, y, z, float32(0.9*math.Exp(-d2/(radius*radius))))
				}
			}
		}
	}
	//gtwvet:ignore determinism MergeMs reports measured wall-clock merge cost (the paper's workbench pipeline metric); computed once per point, so shard-count byte-identity is unaffected
	start := time.Now()
	merged := viz.MergeFunctional(anatHi, corr)
	res.MergeMs = time.Since(start).Seconds() * 1000
	//gtwvet:ignore determinism MIPMs reports measured wall-clock MIP render cost; computed once per point, so shard-count byte-identity is unaffected
	start = time.Now()
	img, err := viz.RenderMIP(anatHi, merged, 0.5)
	if err != nil {
		return res, err
	}
	res.MIPMs = time.Since(start).Seconds() * 1000
	var buf bytes.Buffer
	if err := viz.WritePNG(&buf, img); err != nil {
		return res, err
	}
	res.PNG = buf.Bytes()
	res.PNGBytes = buf.Len()

	res.Rows = []Figure4Row{
		{"OC-12, classical IP (MTU 9180)", viz.WorkbenchFPS(atm.OC12.PayloadRate(), atm.DefaultCLIPMTU),
			"paper: < 8 frames/s"},
		{"OC-12, 64 KByte MTU", viz.WorkbenchFPS(atm.OC12.PayloadRate(), atm.MaxCLIPMTU), ""},
		{"OC-48, classical IP (MTU 9180)", viz.WorkbenchFPS(atm.OC48.PayloadRate(), atm.DefaultCLIPMTU), ""},
	}

	// Measured: stream 20 workbench frames Onyx2 -> Jülich
	// workstation over the testbed WAN (TCP, 64K MTU).
	nbytes := int64(20) * int64(viz.WorkbenchFrameBytes)
	tr, err := tb.TCPTransfer(HostOnyx2, HostWSJuelich, nbytes, tcpsim.Config{WindowBytes: 4 << 20})
	if err != nil {
		return res, err
	}
	res.StreamFPS = 20 / tr.Duration.Seconds()
	return res, nil
}

// Figure4Workbench runs the visualization experiment on a fresh
// testbed.
//
// Deprecated: use the "figure4-workbench" scenario via Run/RunAll.
func Figure4Workbench() (Figure4Result, error) {
	return figure4WorkbenchOn(context.Background(), New(Config{}))
}

// FormatFigure4 renders the result.
func FormatFigure4(r Figure4Result) string {
	var sb strings.Builder
	sb.WriteString("F4: 3-D visualization and Responsive Workbench streaming\n")
	fmt.Fprintf(&sb, "  merge 64x64x16 onto 256x256x128: %.1f ms; MIP render: %.1f ms\n", r.MergeMs, r.MIPMs)
	for _, row := range r.Rows {
		note := row.Paper
		fmt.Fprintf(&sb, "  %-36s %6.2f frames/s  %s\n", row.Config, row.FPS, note)
	}
	fmt.Fprintf(&sb, "  measured stream Onyx2 -> Jülich over testbed: %.2f frames/s\n", r.StreamFPS)
	return sb.String()
}

// ---------------------------------------------------------------- A1 --

// AppRow is one application-requirements row (the section-3 project
// list).
type AppRow struct {
	App          string
	RequiredMbps float64
	Achieved     string
	OK           bool
}

// section3ApplicationsOn checks each application's WAN requirement.
// TCP and RTT probes run on the given testbed; the video row drives the
// simulation kernel directly and therefore uses a private testbed.
func section3ApplicationsOn(ctx context.Context, tb *Testbed) ([]AppRow, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	var rows []AppRow
	// Groundwater: up to 30 MByte/s field transfers SP2 -> T3E.
	tr, err := tb.TCPTransfer(HostSP2, HostT3E600, 64<<20, tcpsim.Config{WindowBytes: 4 << 20})
	if err != nil {
		return nil, err
	}
	gw := tr.ThroughputBps / 8 / 1e6 // MByte/s
	rows = append(rows, AppRow{
		App: "groundwater (TRACE->PARTRACE field/step)", RequiredMbps: 240,
		Achieved: fmt.Sprintf("%.0f MByte/s sustained SP2->T3E", gw),
		OK:       gw >= 30,
	})
	// Climate: ~1 MByte bursts every timestep.
	tr, err = tb.TCPTransfer(HostT3E600, HostSP2, 1<<20, tcpsim.Config{WindowBytes: 4 << 20})
	if err != nil {
		return nil, err
	}
	rows = append(rows, AppRow{
		App: "climate (1 MByte coupler burst)", RequiredMbps: 8,
		Achieved: fmt.Sprintf("burst completes in %.1f ms", tr.Duration.Seconds()*1000),
		OK:       tr.Duration < 500*time.Millisecond,
	})
	// MEG: low volume, latency sensitive.
	rtt, err := tb.RTT(HostT3E600, HostT90)
	if err != nil {
		return nil, err
	}
	wanRTT, err := tb.RTT(HostT3E600, HostSP2)
	if err != nil {
		return nil, err
	}
	rows = append(rows, AppRow{
		App: "MEG/pmusic (latency-bound)", RequiredMbps: 1,
		Achieved: fmt.Sprintf("RTT %.2f ms local, %.2f ms WAN", rtt.Seconds()*1000, wanRTT.Seconds()*1000),
		OK:       wanRTT < 10*time.Millisecond,
	})
	// Video: 270 Mbit/s D1 stream (drives the kernel directly, so it
	// always runs on a private testbed).
	vtb := New(tb.Cfg)
	onyx, err := vtb.Host(HostOnyx2)
	if err != nil {
		return nil, err
	}
	ws, err := vtb.Host(HostWSGMD)
	if err != nil {
		return nil, err
	}
	vres, err := video.Stream(vtb.Net, onyx, ws, video.StreamConfig{Frames: 25})
	if err != nil {
		return nil, err
	}
	rows = append(rows, AppRow{
		App: "multimedia (uncompressed D1 video)", RequiredMbps: 270,
		Achieved: fmt.Sprintf("%d/%d frames on time, peak jitter %.2f ms",
			vres.OnTime, vres.Frames, vres.PeakJitter.Seconds()*1000),
		OK: vres.OnTime == vres.Frames,
	})
	// fMRI: table-1 + figure-2 budget.
	model := fire.DefaultT3E600()
	st := fire.PaperStageTimes(model, 256)
	rows = append(rows, AppRow{
		App: "realtime fMRI (up to 5 computers + scanner)", RequiredMbps: 10,
		Achieved: fmt.Sprintf("end-to-end %.2f s at 256 PEs", st.TotalDelay()),
		OK:       st.TotalDelay() < 5,
	})
	// MetaCISPAR: COCOLIB interface exchange ("depends on the coupled
	// application") — a per-step boundary-field exchange must stay
	// far below a solver timestep.
	ifaceRTT, err := tb.RTT(HostT3E600, HostSP2)
	if err != nil {
		return nil, err
	}
	ifaceTr, err := tb.TCPTransfer(HostT3E600, HostSP2, 64<<10, tcpsim.Config{})
	if err != nil {
		return nil, err
	}
	rows = append(rows, AppRow{
		App: "MetaCISPAR (COCOLIB interface exchange)", RequiredMbps: 5,
		Achieved: fmt.Sprintf("64 KByte boundary field in %.2f ms (RTT %.2f ms)",
			ifaceTr.Duration.Seconds()*1000, ifaceRTT.Seconds()*1000),
		OK: ifaceTr.Duration < 100*time.Millisecond,
	})
	return rows, nil
}

// Section3Applications checks each application's WAN requirement
// against a fresh simulated testbed.
//
// Deprecated: use the "section3-applications" scenario via Run/RunAll.
func Section3Applications() ([]AppRow, error) {
	return section3ApplicationsOn(context.Background(), New(Config{}))
}

// FormatSection3 renders the application table.
func FormatSection3(rows []AppRow) string {
	var sb strings.Builder
	sb.WriteString("A1: application communication requirements vs. the testbed\n")
	for _, r := range rows {
		status := "OK"
		if !r.OK {
			status = "INSUFFICIENT"
		}
		fmt.Fprintf(&sb, "  %-44s req %5.0f Mbit/s  %-44s [%s]\n", r.App, r.RequiredMbps, r.Achieved, status)
	}
	return sb.String()
}
