package groundwater

import (
	"fmt"
	"math"
	"math/rand"
)

// PARTRACE: particle tracking in a given water flow. Particles advect
// with the pore velocity (midpoint / RK2 integration of trilinearly
// interpolated velocities) plus an isotropic random-walk representing
// hydrodynamic dispersion. Particles reflect at the lateral no-flow
// boundaries and are absorbed when they leave through the outflow face,
// recording their breakthrough time.

// Particle is a solute particle in cell coordinates.
type Particle struct {
	X, Y, Z float64
	// Exited is set when the particle left through the outflow face.
	Exited bool
	// ExitTime is the breakthrough time in seconds (valid if Exited).
	ExitTime float64
}

// TrackConfig controls a PARTRACE run.
type TrackConfig struct {
	// Dt is the integration step in seconds.
	Dt float64
	// Steps is the number of steps to integrate.
	Steps int
	// Dispersion is the random-walk std dev in meters per sqrt(s)
	// (0 = pure advection).
	Dispersion float64
	Seed       int64
}

// InjectPlane places n particles uniformly on the inflow face
// (x = 0.5 cells), spread over y and z.
func InjectPlane(f *FlowField, n int, seed int64) []Particle {
	rng := rand.New(rand.NewSource(seed))
	out := make([]Particle, n)
	for i := range out {
		out[i] = Particle{
			X: 0.5,
			Y: rng.Float64() * float64(f.NY-1),
			Z: rng.Float64() * float64(f.NZ-1),
		}
	}
	return out
}

// TrackResult summarizes a tracking run.
type TrackResult struct {
	Exited       int
	MeanX        float64   // mean x position (cells) of particles still inside
	Breakthrough []float64 // exit times of exited particles, seconds
}

// Track advances the particles through the flow field in place and
// returns summary statistics. Time accumulates from startTime so
// coupled runs can stitch epochs together.
func Track(f *FlowField, parts []Particle, cfg TrackConfig, startTime float64) (TrackResult, error) {
	if cfg.Dt <= 0 || cfg.Steps <= 0 {
		return TrackResult{}, fmt.Errorf("groundwater: bad track config dt=%v steps=%d", cfg.Dt, cfg.Steps)
	}
	rng := rand.New(rand.NewSource(cfg.Seed + 99))
	cellsPerMeter := 1 / f.Dx
	for s := 0; s < cfg.Steps; s++ {
		now := startTime + float64(s+1)*cfg.Dt
		for i := range parts {
			p := &parts[i]
			if p.Exited {
				continue
			}
			// RK2 midpoint in cell coordinates (velocity is m/s ->
			// cells/s via 1/Dx).
			vx, vy, vz := f.Velocity(p.X, p.Y, p.Z)
			mx := p.X + 0.5*cfg.Dt*vx*cellsPerMeter
			my := p.Y + 0.5*cfg.Dt*vy*cellsPerMeter
			mz := p.Z + 0.5*cfg.Dt*vz*cellsPerMeter
			vx, vy, vz = f.Velocity(mx, my, mz)
			p.X += cfg.Dt * vx * cellsPerMeter
			p.Y += cfg.Dt * vy * cellsPerMeter
			p.Z += cfg.Dt * vz * cellsPerMeter
			if cfg.Dispersion > 0 {
				sd := cfg.Dispersion * math.Sqrt(cfg.Dt) * cellsPerMeter
				p.X += rng.NormFloat64() * sd
				p.Y += rng.NormFloat64() * sd
				p.Z += rng.NormFloat64() * sd
			}
			// Reflect laterally.
			p.Y = reflect(p.Y, float64(f.NY-1))
			p.Z = reflect(p.Z, float64(f.NZ-1))
			if p.X < 0 {
				p.X = 0
			}
			// Absorb at the outflow face.
			if p.X >= float64(f.NX-1) {
				p.Exited = true
				p.ExitTime = now
			}
		}
	}
	var res TrackResult
	var sumX float64
	inside := 0
	for i := range parts {
		if parts[i].Exited {
			res.Exited++
			res.Breakthrough = append(res.Breakthrough, parts[i].ExitTime)
		} else {
			sumX += parts[i].X
			inside++
		}
	}
	if inside > 0 {
		res.MeanX = sumX / float64(inside)
	}
	return res, nil
}

// reflect folds v into [0, limit].
func reflect(v, limit float64) float64 {
	for v < 0 || v > limit {
		if v < 0 {
			v = -v
		}
		if v > limit {
			v = 2*limit - v
		}
	}
	return v
}
