package groundwater

import (
	"fmt"

	"repro/internal/mpi"
)

// CoupledConfig describes a TRACE/PARTRACE metacomputing run: rank 0
// (TRACE, on the SP2 in the testbed) re-solves the flow each coupling
// step under slowly varying boundary conditions and ships the velocity
// field to rank 1 (PARTRACE, on the T3E), which advances the particles.
type CoupledConfig struct {
	Flow      FlowConfig
	Track     TrackConfig
	Particles int
	// Steps is the number of coupling timesteps.
	Steps int
	// HeadDrift is added to the inflow head each step (transient
	// forcing).
	HeadDrift float64
}

// CoupledResult is what rank 1 reports after the run.
type CoupledResult struct {
	Steps        int
	BytesPerStep int
	TotalBytes   int64
	Exited       int
	FinalMeanX   float64
	CGIterTotal  int
}

// fieldTag is the coupling message tag.
const fieldTag = 11

// RunCoupled executes the coupled application on two ranks placed on
// the given hosts with the given WAN shaper, and returns rank 1's
// result. This is the §3 "Transport of solutants in ground water"
// project in miniature.
func RunCoupled(hosts [2]string, shaper mpi.Shaper, cfg CoupledConfig) (CoupledResult, error) {
	return RunCoupledTraced(hosts, shaper, nil, cfg)
}

// RunCoupledTraced is RunCoupled with a communication tracer attached
// (the VAMPIR workflow: run the coupled application, then inspect the
// timeline and message matrix).
func RunCoupledTraced(hosts [2]string, shaper mpi.Shaper, tracer mpi.Tracer, cfg CoupledConfig) (CoupledResult, error) {
	if cfg.Steps <= 0 {
		return CoupledResult{}, fmt.Errorf("groundwater: coupled run needs steps > 0")
	}
	var result CoupledResult
	err := mpi.RunHosts(hosts[:], shaper, tracer, func(c *mpi.Comm) error {
		switch c.Rank() {
		case 0: // TRACE
			flow := cfg.Flow
			cgTotal := 0
			for s := 0; s < cfg.Steps; s++ {
				field, err := SolveFlow(flow)
				if err != nil {
					return fmt.Errorf("TRACE step %d: %w", s, err)
				}
				cgTotal += field.CGIterations
				buf := packField(field)
				if err := c.Send(1, fieldTag, buf); err != nil {
					return err
				}
				flow.HeadLeft += cfg.HeadDrift
			}
			// Ship the solver-effort tally for the report.
			return c.SendFloat64s(1, fieldTag+1, []float64{float64(cgTotal)})
		case 1: // PARTRACE
			var parts []Particle
			elapsed := 0.0
			var lastRes TrackResult
			var total int64
			var perStep int
			for s := 0; s < cfg.Steps; s++ {
				msg, err := c.Recv(0, fieldTag)
				if err != nil {
					return err
				}
				field, err := unpackField(msg.Data, cfg.Flow)
				if err != nil {
					return fmt.Errorf("PARTRACE step %d: %w", s, err)
				}
				perStep = len(msg.Data)
				total += int64(len(msg.Data))
				if parts == nil {
					parts = InjectPlane(field, cfg.Particles, cfg.Track.Seed)
				}
				lastRes, err = Track(field, parts, cfg.Track, elapsed)
				if err != nil {
					return err
				}
				elapsed += float64(cfg.Track.Steps) * cfg.Track.Dt
			}
			cg, err := c.RecvFloat64s(0, fieldTag+1)
			if err != nil {
				return err
			}
			result = CoupledResult{
				Steps: cfg.Steps, BytesPerStep: perStep, TotalBytes: total,
				Exited: lastRes.Exited, FinalMeanX: lastRes.MeanX,
				CGIterTotal: int(cg[0]),
			}
			return nil
		}
		return nil
	})
	return result, err
}

// packField serializes the velocity components as float32, the wire
// format whose size the paper's 30 MByte/s figure refers to.
func packField(f *FlowField) []byte {
	n := f.NX * f.NY * f.NZ
	v := make([]float32, 3*n)
	for i := 0; i < n; i++ {
		v[i] = float32(f.VX[i])
		v[n+i] = float32(f.VY[i])
		v[2*n+i] = float32(f.VZ[i])
	}
	return mpi.Float32sToBytes(v)
}

// unpackField rebuilds a FlowField (velocities only; head omitted) from
// the wire format.
func unpackField(buf []byte, cfg FlowConfig) (*FlowField, error) {
	v, err := mpi.BytesToFloat32s(buf)
	if err != nil {
		return nil, err
	}
	n := cfg.NX * cfg.NY * cfg.NZ
	if len(v) != 3*n {
		return nil, fmt.Errorf("groundwater: field payload %d values, want %d", len(v), 3*n)
	}
	f := &FlowField{NX: cfg.NX, NY: cfg.NY, NZ: cfg.NZ, Dx: cfg.Dx,
		VX: make([]float64, n), VY: make([]float64, n), VZ: make([]float64, n)}
	for i := 0; i < n; i++ {
		f.VX[i] = float64(v[i])
		f.VY[i] = float64(v[n+i])
		f.VZ[i] = float64(v[2*n+i])
	}
	return f, nil
}
