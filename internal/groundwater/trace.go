// Package groundwater reimplements the coupled application of the
// Institute for Petroleum and Organic Geochemistry: TRACE, a saturated
// groundwater flow simulation, coupled to PARTRACE, a particle tracker
// computing the transport of solutants in the computed water flow. In
// the testbed TRACE ran on the IBM SP2 and PARTRACE on the Cray T3E,
// with the 3-D flow field crossing the WAN every timestep at up to
// 30 MByte/s.
//
// TRACE here is a finite-volume Darcy solver: steady saturated flow
// del . (K grad h) = 0 on a regular grid with Dirichlet head boundaries
// at the inflow (x=0) and outflow (x=NX-1) faces and no-flow elsewhere,
// solved with conjugate gradients on the SPD system; Darcy fluxes are
// converted to pore velocities with the porosity.
package groundwater

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/linalg"
)

// FlowConfig describes one TRACE solve.
type FlowConfig struct {
	NX, NY, NZ int
	// Dx is the cell size in meters (cubic cells).
	Dx float64
	// K is the hydraulic conductivity per cell (m/s), length NX*NY*NZ.
	K []float64
	// HeadLeft and HeadRight are the Dirichlet heads (m) at the x=0
	// and x=NX-1 faces.
	HeadLeft, HeadRight float64
	// Porosity converts Darcy flux to pore velocity.
	Porosity float64
	// Tol is the CG relative tolerance (default 1e-10).
	Tol float64
}

// UniformK builds a homogeneous conductivity field.
func UniformK(nx, ny, nz int, k float64) []float64 {
	out := make([]float64, nx*ny*nz)
	for i := range out {
		out[i] = k
	}
	return out
}

// LognormalK builds a heterogeneous conductivity field with the given
// geometric mean and log-std-dev — the standard aquifer heterogeneity
// model.
func LognormalK(nx, ny, nz int, geomMean, sigmaLn float64, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	out := make([]float64, nx*ny*nz)
	for i := range out {
		out[i] = geomMean * math.Exp(sigmaLn*rng.NormFloat64())
	}
	return out
}

// FlowField is the solved head and cell-centered pore-velocity field.
type FlowField struct {
	NX, NY, NZ int
	Dx         float64
	Head       []float64
	VX, VY, VZ []float64
	// CGIterations reports solver effort.
	CGIterations int
}

// Idx converts cell coordinates to a linear index.
func (f *FlowField) Idx(x, y, z int) int { return x + f.NX*(y+f.NY*z) }

func harmonic(a, b float64) float64 {
	if a+b == 0 {
		return 0
	}
	return 2 * a * b / (a + b)
}

// SolveFlow runs one steady-state TRACE solve.
func SolveFlow(cfg FlowConfig) (*FlowField, error) {
	nx, ny, nz := cfg.NX, cfg.NY, cfg.NZ
	if nx < 3 || ny < 1 || nz < 1 {
		return nil, fmt.Errorf("groundwater: grid %dx%dx%d too small (need nx >= 3)", nx, ny, nz)
	}
	if len(cfg.K) != nx*ny*nz {
		return nil, fmt.Errorf("groundwater: K length %d != %d cells", len(cfg.K), nx*ny*nz)
	}
	if cfg.Dx <= 0 || cfg.Porosity <= 0 {
		return nil, fmt.Errorf("groundwater: Dx and Porosity must be positive")
	}
	if cfg.Tol == 0 {
		cfg.Tol = 1e-10
	}
	idx := func(x, y, z int) int { return x + nx*(y+ny*z) }
	// Unknowns: interior-in-x cells (1..nx-2), all y, z.
	inx := nx - 2
	n := inx * ny * nz
	uidx := func(x, y, z int) int { return (x - 1) + inx*(y+ny*z) }

	// Interface transmissibility between two cells (unit cross-section
	// area divided by spacing folds into a single Dx factor).
	trans := func(c1, c2 int) float64 { return harmonic(cfg.K[c1], cfg.K[c2]) * cfg.Dx }

	b := make([]float64, n)
	op := func(dst, src []float64) {
		for z := 0; z < nz; z++ {
			for y := 0; y < ny; y++ {
				for x := 1; x < nx-1; x++ {
					c := idx(x, y, z)
					u := uidx(x, y, z)
					var diag, off float64
					// x- neighbor.
					t := trans(c, idx(x-1, y, z))
					diag += t
					if x-1 >= 1 {
						off += t * src[uidx(x-1, y, z)]
					}
					// x+ neighbor.
					t = trans(c, idx(x+1, y, z))
					diag += t
					if x+1 <= nx-2 {
						off += t * src[uidx(x+1, y, z)]
					}
					// y, z neighbors: no-flow outside.
					if y > 0 {
						t = trans(c, idx(x, y-1, z))
						diag += t
						off += t * src[uidx(x, y-1, z)]
					}
					if y < ny-1 {
						t = trans(c, idx(x, y+1, z))
						diag += t
						off += t * src[uidx(x, y+1, z)]
					}
					if z > 0 {
						t = trans(c, idx(x, y, z-1))
						diag += t
						off += t * src[uidx(x, y, z-1)]
					}
					if z < nz-1 {
						t = trans(c, idx(x, y, z+1))
						diag += t
						off += t * src[uidx(x, y, z+1)]
					}
					dst[u] = diag*src[u] - off
				}
			}
		}
	}
	// RHS from Dirichlet planes.
	for z := 0; z < nz; z++ {
		for y := 0; y < ny; y++ {
			b[uidx(1, y, z)] += trans(idx(1, y, z), idx(0, y, z)) * cfg.HeadLeft
			b[uidx(nx-2, y, z)] += trans(idx(nx-2, y, z), idx(nx-1, y, z)) * cfg.HeadRight
		}
	}
	h := make([]float64, n)
	// Linear initial guess speeds convergence.
	for z := 0; z < nz; z++ {
		for y := 0; y < ny; y++ {
			for x := 1; x < nx-1; x++ {
				f := float64(x) / float64(nx-1)
				h[uidx(x, y, z)] = cfg.HeadLeft + f*(cfg.HeadRight-cfg.HeadLeft)
			}
		}
	}
	res, err := linalg.CG(op, h, b, cfg.Tol, 40*n)
	if err != nil {
		return nil, fmt.Errorf("groundwater: CG failed: %w", err)
	}
	if !res.Converged {
		return nil, fmt.Errorf("groundwater: CG stalled at residual %g after %d iterations", res.Residual, res.Iterations)
	}

	// Assemble the full head field.
	field := &FlowField{NX: nx, NY: ny, NZ: nz, Dx: cfg.Dx,
		Head: make([]float64, nx*ny*nz), CGIterations: res.Iterations}
	for z := 0; z < nz; z++ {
		for y := 0; y < ny; y++ {
			field.Head[idx(0, y, z)] = cfg.HeadLeft
			field.Head[idx(nx-1, y, z)] = cfg.HeadRight
			for x := 1; x < nx-1; x++ {
				field.Head[idx(x, y, z)] = h[uidx(x, y, z)]
			}
		}
	}
	// Cell-centered pore velocities from central differences of head
	// (one-sided at boundaries), v = -K grad h / porosity.
	field.VX = make([]float64, nx*ny*nz)
	field.VY = make([]float64, nx*ny*nz)
	field.VZ = make([]float64, nx*ny*nz)
	grad := func(hm, hp float64, cells int) float64 { return (hp - hm) / (float64(cells) * cfg.Dx) }
	for z := 0; z < nz; z++ {
		for y := 0; y < ny; y++ {
			for x := 0; x < nx; x++ {
				c := idx(x, y, z)
				xm, xp := maxi(x-1, 0), mini(x+1, nx-1)
				ym, yp := maxi(y-1, 0), mini(y+1, ny-1)
				zm, zp := maxi(z-1, 0), mini(z+1, nz-1)
				k := cfg.K[c] / cfg.Porosity
				if xp > xm {
					field.VX[c] = -k * grad(field.Head[idx(xm, y, z)], field.Head[idx(xp, y, z)], xp-xm)
				}
				if yp > ym {
					field.VY[c] = -k * grad(field.Head[idx(x, ym, z)], field.Head[idx(x, yp, z)], yp-ym)
				}
				if zp > zm {
					field.VZ[c] = -k * grad(field.Head[idx(x, y, zm)], field.Head[idx(x, y, zp)], zp-zm)
				}
			}
		}
	}
	return field, nil
}

// FieldBytes reports the wire size of the velocity field as transferred
// to PARTRACE (three float32 components per cell).
func (f *FlowField) FieldBytes() int { return 3 * 4 * f.NX * f.NY * f.NZ }

// Velocity samples the pore velocity at a fractional cell coordinate by
// trilinear interpolation with edge clamping.
func (f *FlowField) Velocity(x, y, z float64) (vx, vy, vz float64) {
	return trilinear(f.VX, f.NX, f.NY, f.NZ, x, y, z),
		trilinear(f.VY, f.NX, f.NY, f.NZ, x, y, z),
		trilinear(f.VZ, f.NX, f.NY, f.NZ, x, y, z)
}

func trilinear(data []float64, nx, ny, nz int, x, y, z float64) float64 {
	x0, y0, z0 := int(math.Floor(x)), int(math.Floor(y)), int(math.Floor(z))
	fx, fy, fz := x-float64(x0), y-float64(y0), z-float64(z0)
	cl := func(i, n int) int {
		if i < 0 {
			return 0
		}
		if i >= n {
			return n - 1
		}
		return i
	}
	at := func(x, y, z int) float64 { return data[cl(x, nx)+nx*(cl(y, ny)+ny*cl(z, nz))] }
	c00 := at(x0, y0, z0)*(1-fx) + at(x0+1, y0, z0)*fx
	c10 := at(x0, y0+1, z0)*(1-fx) + at(x0+1, y0+1, z0)*fx
	c01 := at(x0, y0, z0+1)*(1-fx) + at(x0+1, y0, z0+1)*fx
	c11 := at(x0, y0+1, z0+1)*(1-fx) + at(x0+1, y0+1, z0+1)*fx
	c0 := c00*(1-fy) + c10*fy
	c1 := c01*(1-fy) + c11*fy
	return c0*(1-fz) + c1*fz
}

func maxi(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func mini(a, b int) int {
	if a < b {
		return a
	}
	return b
}
