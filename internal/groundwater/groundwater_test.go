package groundwater

import (
	"math"
	"testing"
	"time"

	"repro/internal/mpi"
)

func uniformCfg() FlowConfig {
	return FlowConfig{
		NX: 20, NY: 8, NZ: 6, Dx: 1.0,
		K:        UniformK(20, 8, 6, 1e-4),
		HeadLeft: 10, HeadRight: 0, Porosity: 0.3,
	}
}

func TestUniformFlowLinearHead(t *testing.T) {
	f, err := SolveFlow(uniformCfg())
	if err != nil {
		t.Fatal(err)
	}
	// Head must be linear in x and uniform in y, z.
	for x := 0; x < 20; x++ {
		want := 10 * (1 - float64(x)/19)
		for _, yz := range [][2]int{{0, 0}, {4, 3}, {7, 5}} {
			got := f.Head[f.Idx(x, yz[0], yz[1])]
			if math.Abs(got-want) > 1e-6 {
				t.Fatalf("head(%d,%d,%d) = %v, want %v", x, yz[0], yz[1], got, want)
			}
		}
	}
}

func TestUniformFlowVelocity(t *testing.T) {
	cfg := uniformCfg()
	f, err := SolveFlow(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// v = -K dh/dx / porosity = 1e-4 * (10/19) / 0.3.
	want := 1e-4 * (10.0 / 19.0) / 0.3
	vx, vy, vz := f.Velocity(10, 4, 3)
	if math.Abs(vx-want)/want > 1e-6 {
		t.Errorf("vx = %g, want %g", vx, want)
	}
	if math.Abs(vy) > want*1e-6 || math.Abs(vz) > want*1e-6 {
		t.Errorf("transverse velocities not ~0: %g %g", vy, vz)
	}
}

func TestHeterogeneousFlowMassBalance(t *testing.T) {
	cfg := uniformCfg()
	cfg.K = LognormalK(20, 8, 6, 1e-4, 1.0, 7)
	f, err := SolveFlow(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Darcy flux through each x-plane of interfaces must be equal
	// (steady state, no-flow lateral boundaries).
	flux := func(x int) float64 {
		var q float64
		for z := 0; z < cfg.NZ; z++ {
			for y := 0; y < cfg.NY; y++ {
				c1 := f.Idx(x, y, z)
				c2 := f.Idx(x+1, y, z)
				k := harmonic(cfg.K[c1], cfg.K[c2])
				q += k * (f.Head[c1] - f.Head[c2]) * cfg.Dx
			}
		}
		return q
	}
	q0 := flux(0)
	if q0 <= 0 {
		t.Fatal("no flow from high to low head")
	}
	for x := 1; x < 19; x++ {
		if diff := math.Abs(flux(x)-q0) / q0; diff > 1e-6 {
			t.Fatalf("mass balance violated at plane %d: %.2e", x, diff)
		}
	}
}

func TestHeadBoundsAndMonotonicity(t *testing.T) {
	cfg := uniformCfg()
	cfg.K = LognormalK(20, 8, 6, 1e-4, 1.5, 3)
	f, err := SolveFlow(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Discrete maximum principle: head within [HeadRight, HeadLeft].
	for i, h := range f.Head {
		if h < -1e-9 || h > 10+1e-9 {
			t.Fatalf("head[%d] = %v outside [0, 10]", i, h)
		}
	}
}

func TestSolveFlowValidation(t *testing.T) {
	cfg := uniformCfg()
	cfg.NX = 2
	if _, err := SolveFlow(cfg); err == nil {
		t.Error("tiny grid accepted")
	}
	cfg = uniformCfg()
	cfg.K = cfg.K[:10]
	if _, err := SolveFlow(cfg); err == nil {
		t.Error("short K accepted")
	}
	cfg = uniformCfg()
	cfg.Porosity = 0
	if _, err := SolveFlow(cfg); err == nil {
		t.Error("zero porosity accepted")
	}
}

func TestParticlesAdvectDownGradient(t *testing.T) {
	cfg := uniformCfg()
	f, err := SolveFlow(cfg)
	if err != nil {
		t.Fatal(err)
	}
	parts := InjectPlane(f, 50, 1)
	vx, _, _ := f.Velocity(10, 4, 3) // m/s
	// Time to traverse ~5 cells.
	dt := 1.0 * cfg.Dx / vx
	res, err := Track(f, parts, TrackConfig{Dt: dt / 10, Steps: 50, Seed: 2}, 0)
	if err != nil {
		t.Fatal(err)
	}
	// After 5 cell-traversal times, mean position ~ 0.5 + 5 cells.
	if math.Abs(res.MeanX-5.5) > 0.3 {
		t.Errorf("mean x = %.2f cells, want ~5.5", res.MeanX)
	}
	if res.Exited != 0 {
		t.Errorf("%d particles exited early", res.Exited)
	}
}

func TestParticlesBreakthrough(t *testing.T) {
	cfg := uniformCfg()
	f, err := SolveFlow(cfg)
	if err != nil {
		t.Fatal(err)
	}
	parts := InjectPlane(f, 30, 1)
	vx, _, _ := f.Velocity(10, 4, 3)
	traverse := 19 * cfg.Dx / vx // full domain
	res, err := Track(f, parts, TrackConfig{Dt: traverse / 200, Steps: 300, Seed: 2}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Exited != 30 {
		t.Fatalf("only %d/30 particles broke through", res.Exited)
	}
	// Pure advection: breakthrough at ~traverse time.
	for _, bt := range res.Breakthrough {
		if math.Abs(bt-traverse)/traverse > 0.1 {
			t.Fatalf("breakthrough at %.0f s, want ~%.0f", bt, traverse)
		}
	}
}

func TestDispersionSpreadsPlume(t *testing.T) {
	cfg := uniformCfg()
	f, err := SolveFlow(cfg)
	if err != nil {
		t.Fatal(err)
	}
	vx, _, _ := f.Velocity(10, 4, 3)
	dt := cfg.Dx / vx / 10
	run := func(disp float64) float64 {
		parts := InjectPlane(f, 200, 4)
		if _, err := Track(f, parts, TrackConfig{Dt: dt, Steps: 40, Dispersion: disp, Seed: 5}, 0); err != nil {
			t.Fatal(err)
		}
		var mean, ss float64
		for _, p := range parts {
			mean += p.X
		}
		mean /= 200
		for _, p := range parts {
			ss += (p.X - mean) * (p.X - mean)
		}
		return math.Sqrt(ss / 200)
	}
	if spread, pure := run(2e-4), run(0); spread <= pure+1e-9 {
		t.Errorf("dispersion did not spread the plume: %g vs %g", spread, pure)
	}
}

func TestTrackValidation(t *testing.T) {
	f := &FlowField{NX: 4, NY: 4, NZ: 4, Dx: 1,
		VX: make([]float64, 64), VY: make([]float64, 64), VZ: make([]float64, 64)}
	if _, err := Track(f, nil, TrackConfig{}, 0); err == nil {
		t.Error("zero dt accepted")
	}
}

func TestReflect(t *testing.T) {
	if v := reflect(-0.5, 10); v != 0.5 {
		t.Errorf("reflect(-0.5) = %v", v)
	}
	if v := reflect(10.5, 10); v != 9.5 {
		t.Errorf("reflect(10.5) = %v", v)
	}
	if v := reflect(5, 10); v != 5 {
		t.Errorf("reflect(5) = %v", v)
	}
}

func TestCoupledRunTransfersField(t *testing.T) {
	flow := uniformCfg()
	// Heterogeneous conductivity so the solver does real work (a
	// uniform field is solved exactly by the linear initial guess).
	flow.K = LognormalK(flow.NX, flow.NY, flow.NZ, 1e-4, 0.8, 11)
	cfg := CoupledConfig{
		Flow:      flow,
		Track:     TrackConfig{Dt: 1000, Steps: 10, Seed: 3},
		Particles: 40,
		Steps:     4,
		HeadDrift: 0.1,
	}
	shaper := mpi.LinkShaper{Latency: 100 * time.Microsecond, Bps: 1e9}
	res, err := RunCoupled([2]string{"ibm-sp2", "cray-t3e"}, shaper, cfg)
	if err != nil {
		t.Fatal(err)
	}
	wantBytes := 3 * 4 * 20 * 8 * 6
	if res.BytesPerStep != wantBytes {
		t.Errorf("field transfer = %d bytes/step, want %d", res.BytesPerStep, wantBytes)
	}
	if res.TotalBytes != int64(4*wantBytes) {
		t.Errorf("total = %d", res.TotalBytes)
	}
	if res.FinalMeanX <= 0.5 {
		t.Error("particles did not advance over the coupled run")
	}
	if res.CGIterTotal <= 0 {
		t.Error("no CG effort reported")
	}
}

func TestCoupledRunValidation(t *testing.T) {
	if _, err := RunCoupled([2]string{"a", "b"}, nil, CoupledConfig{}); err == nil {
		t.Error("steps=0 accepted")
	}
}
