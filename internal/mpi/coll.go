package mpi

import (
	"fmt"
)

// Internal collective tags.
const (
	tagBarrier = iota
	tagBcast
	tagReduce
	tagGather
	tagScatter
	tagAlltoall
	tagScan
)

// Op is a reduction operation over float64 element vectors.
type Op int

// Reduction operations.
const (
	OpSum Op = iota
	OpMax
	OpMin
	OpProd
)

func (op Op) apply(acc, in []float64) {
	switch op {
	case OpSum:
		for i := range acc {
			acc[i] += in[i]
		}
	case OpMax:
		for i := range acc {
			if in[i] > acc[i] {
				acc[i] = in[i]
			}
		}
	case OpMin:
		for i := range acc {
			if in[i] < acc[i] {
				acc[i] = in[i]
			}
		}
	case OpProd:
		for i := range acc {
			acc[i] *= in[i]
		}
	}
}

// Barrier blocks until every rank of the communicator has entered it
// (dissemination algorithm, ceil(log2 n) rounds).
func (c *Comm) Barrier() {
	n := c.Size()
	if n == 1 {
		return
	}
	for dist := 1; dist < n; dist *= 2 {
		dst := (c.rank + dist) % n
		src := (c.rank - dist + n) % n
		done := make(chan struct{})
		go func() {
			c.sendColl(dst, tagBarrier, nil)
			close(done)
		}()
		c.recvColl(src, tagBarrier)
		<-done
	}
}

// Bcast distributes root's buffer to every rank along a binomial tree
// and returns the received copy (on root: data itself).
func (c *Comm) Bcast(root int, data []byte) ([]byte, error) {
	if err := c.checkRank(root); err != nil {
		return nil, err
	}
	n := c.Size()
	if n == 1 {
		return data, nil
	}
	// Rotate so the root is virtual rank 0, then run the standard
	// binomial tree: receive at the level of the lowest set bit,
	// forward at every level below it.
	vrank := (c.rank - root + n) % n
	mask := 1
	for mask < n {
		if vrank&mask != 0 {
			parent := ((vrank - mask) + root) % n
			data = c.recvColl(parent, tagBcast)
			break
		}
		mask <<= 1
	}
	mask >>= 1
	for mask > 0 {
		if vrank+mask < n {
			child := (vrank + mask + root) % n
			c.sendColl(child, tagBcast, data)
		}
		mask >>= 1
	}
	return data, nil
}

// Reduce combines the vec contributions of all ranks with op; the
// result is returned at root (nil elsewhere). All ranks must pass
// vectors of equal length.
func (c *Comm) Reduce(root int, op Op, vec []float64) ([]float64, error) {
	if err := c.checkRank(root); err != nil {
		return nil, err
	}
	n := c.Size()
	acc := append([]float64(nil), vec...)
	if n == 1 {
		return acc, nil
	}
	vrank := (c.rank - root + n) % n
	// Binomial fan-in: mirror image of Bcast.
	mask := 1
	for mask < n {
		if vrank&mask != 0 {
			parent := vrank &^ mask
			real := (parent + root) % n
			c.sendColl(real, tagReduce, Float64sToBytes(acc))
			break
		}
		peer := vrank | mask
		if peer < n {
			data := c.recvColl((peer+root)%n, tagReduce)
			in, err := BytesToFloat64s(data)
			if err != nil {
				return nil, err
			}
			if len(in) != len(acc) {
				return nil, fmt.Errorf("mpi: Reduce length mismatch %d vs %d", len(in), len(acc))
			}
			op.apply(acc, in)
		}
		mask <<= 1
	}
	if c.rank == root {
		return acc, nil
	}
	return nil, nil
}

// Allreduce combines contributions and delivers the result everywhere.
func (c *Comm) Allreduce(op Op, vec []float64) ([]float64, error) {
	res, err := c.Reduce(0, op, vec)
	if err != nil {
		return nil, err
	}
	var buf []byte
	if c.rank == 0 {
		buf = Float64sToBytes(res)
	}
	buf, err = c.Bcast(0, buf)
	if err != nil {
		return nil, err
	}
	return BytesToFloat64s(buf)
}

// Gather collects each rank's buffer at root, ordered by rank. Only
// root receives a non-nil result.
func (c *Comm) Gather(root int, data []byte) ([][]byte, error) {
	if err := c.checkRank(root); err != nil {
		return nil, err
	}
	if c.rank != root {
		c.sendColl(root, tagGather, data)
		return nil, nil
	}
	out := make([][]byte, c.Size())
	out[root] = append([]byte(nil), data...)
	for r := 0; r < c.Size(); r++ {
		if r == root {
			continue
		}
		out[r] = c.recvColl(r, tagGather)
	}
	return out, nil
}

// Allgather collects every rank's buffer everywhere.
func (c *Comm) Allgather(data []byte) ([][]byte, error) {
	parts, err := c.Gather(0, data)
	if err != nil {
		return nil, err
	}
	// Flatten with a length prefix table, broadcast, and split.
	var flat []byte
	if c.rank == 0 {
		lens := make([]float64, len(parts))
		for i, p := range parts {
			lens[i] = float64(len(p))
		}
		flat = Float64sToBytes(lens)
		for _, p := range parts {
			flat = append(flat, p...)
		}
	}
	flat, err = c.Bcast(0, flat)
	if err != nil {
		return nil, err
	}
	n := c.Size()
	lens, err := BytesToFloat64s(flat[:8*n])
	if err != nil {
		return nil, err
	}
	out := make([][]byte, n)
	off := 8 * n
	for i := 0; i < n; i++ {
		l := int(lens[i])
		if off+l > len(flat) {
			return nil, fmt.Errorf("mpi: Allgather framing corrupt")
		}
		out[i] = flat[off : off+l : off+l]
		off += l
	}
	return out, nil
}

// Scatter distributes parts[i] from root to rank i and returns the
// local part. Non-root ranks pass parts == nil.
func (c *Comm) Scatter(root int, parts [][]byte) ([]byte, error) {
	if err := c.checkRank(root); err != nil {
		return nil, err
	}
	if c.rank == root {
		if len(parts) != c.Size() {
			return nil, fmt.Errorf("mpi: Scatter needs %d parts, got %d", c.Size(), len(parts))
		}
		for r := 0; r < c.Size(); r++ {
			if r == root {
				continue
			}
			c.sendColl(r, tagScatter, parts[r])
		}
		return append([]byte(nil), parts[root]...), nil
	}
	return c.recvColl(root, tagScatter), nil
}

// Scan computes the inclusive prefix reduction: rank r receives
// op(vec_0, ..., vec_r). Linear chain (ranks are few in metacomputing
// configurations; latency, not bandwidth, dominates).
func (c *Comm) Scan(op Op, vec []float64) ([]float64, error) {
	acc := append([]float64(nil), vec...)
	if c.rank > 0 {
		data := c.recvColl(c.rank-1, tagScan)
		in, err := BytesToFloat64s(data)
		if err != nil {
			return nil, err
		}
		if len(in) != len(acc) {
			return nil, fmt.Errorf("mpi: Scan length mismatch %d vs %d", len(in), len(acc))
		}
		// acc = op(prefix, own): order matters only for
		// non-commutative ops, which Op does not include.
		op.apply(acc, in)
	}
	if c.rank < c.Size()-1 {
		c.sendColl(c.rank+1, tagScan, Float64sToBytes(acc))
	}
	return acc, nil
}

// ReduceScatter reduces rank-indexed blocks across all ranks and
// scatters the result: each rank passes one block per destination rank
// and receives the element-wise op-combination of the blocks addressed
// to it.
func (c *Comm) ReduceScatter(op Op, blocks [][]float64) ([]float64, error) {
	n := c.Size()
	if len(blocks) != n {
		return nil, fmt.Errorf("mpi: ReduceScatter needs %d blocks, got %d", n, len(blocks))
	}
	parts := make([][]byte, n)
	for r, blk := range blocks {
		parts[r] = Float64sToBytes(blk)
	}
	in, err := c.Alltoall(parts)
	if err != nil {
		return nil, err
	}
	var acc []float64
	for r, buf := range in {
		v, err := BytesToFloat64s(buf)
		if err != nil {
			return nil, err
		}
		if acc == nil {
			acc = v
			continue
		}
		if len(v) != len(acc) {
			return nil, fmt.Errorf("mpi: ReduceScatter block from rank %d has %d elements, want %d",
				r, len(v), len(acc))
		}
		op.apply(acc, v)
	}
	return acc, nil
}

// Alltoall sends parts[i] to rank i and returns the buffers received
// from every rank (indexed by source).
func (c *Comm) Alltoall(parts [][]byte) ([][]byte, error) {
	n := c.Size()
	if len(parts) != n {
		return nil, fmt.Errorf("mpi: Alltoall needs %d parts, got %d", n, len(parts))
	}
	out := make([][]byte, n)
	out[c.rank] = append([]byte(nil), parts[c.rank]...)
	done := make(chan struct{})
	go func() {
		for r := 0; r < n; r++ {
			if r != c.rank {
				c.sendColl(r, tagAlltoall, parts[r])
			}
		}
		close(done)
	}()
	for r := 0; r < n; r++ {
		if r != c.rank {
			out[r] = c.recvColl(r, tagAlltoall)
		}
	}
	<-done
	return out, nil
}
