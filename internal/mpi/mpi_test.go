package mpi

import (
	"fmt"
	"math"
	"sync"
	"testing"
	"time"
)

func TestPingPong(t *testing.T) {
	err := Run(2, func(c *Comm) error {
		switch c.Rank() {
		case 0:
			if err := c.Send(1, 5, []byte("ping")); err != nil {
				return err
			}
			msg, err := c.Recv(1, 5)
			if err != nil {
				return err
			}
			if string(msg.Data) != "pong" || msg.Source != 1 {
				return fmt.Errorf("got %q from %d", msg.Data, msg.Source)
			}
		case 1:
			msg, err := c.Recv(0, 5)
			if err != nil {
				return err
			}
			if string(msg.Data) != "ping" {
				return fmt.Errorf("got %q", msg.Data)
			}
			return c.Send(0, 5, []byte("pong"))
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestTagMatching(t *testing.T) {
	err := Run(2, func(c *Comm) error {
		if c.Rank() == 0 {
			// Send tags out of order; receiver picks by tag.
			c.Send(1, 7, []byte("seven"))
			c.Send(1, 3, []byte("three"))
			return nil
		}
		m3, err := c.Recv(0, 3)
		if err != nil {
			return err
		}
		m7, err := c.Recv(0, 7)
		if err != nil {
			return err
		}
		if string(m3.Data) != "three" || string(m7.Data) != "seven" {
			return fmt.Errorf("tag matching broken: %q %q", m3.Data, m7.Data)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAnySourceAnyTag(t *testing.T) {
	err := Run(3, func(c *Comm) error {
		if c.Rank() == 0 {
			seen := map[int]bool{}
			for i := 0; i < 2; i++ {
				msg, err := c.Recv(AnySource, AnyTag)
				if err != nil {
					return err
				}
				seen[msg.Source] = true
			}
			if !seen[1] || !seen[2] {
				return fmt.Errorf("wildcard recv missed a source: %v", seen)
			}
			return nil
		}
		return c.Send(0, c.Rank(), []byte{byte(c.Rank())})
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestNegativeTagRejected(t *testing.T) {
	err := Run(2, func(c *Comm) error {
		if c.Rank() == 0 {
			if err := c.Send(1, -3, nil); err == nil {
				return fmt.Errorf("negative tag accepted")
			}
			// Unblock rank 1.
			return c.Send(1, 0, nil)
		}
		_, err := c.Recv(0, 0)
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSendrecvNoDeadlock(t *testing.T) {
	err := Run(2, func(c *Comm) error {
		peer := 1 - c.Rank()
		data := []byte{byte(c.Rank())}
		msg, err := c.Sendrecv(peer, 1, data, peer, 1)
		if err != nil {
			return err
		}
		if msg.Data[0] != byte(peer) {
			return fmt.Errorf("exchanged wrong data")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestIsendIrecvWaitTest(t *testing.T) {
	err := Run(2, func(c *Comm) error {
		if c.Rank() == 0 {
			req := c.Isend(1, 2, []byte("async"))
			_, err := req.Wait()
			return err
		}
		req := c.Irecv(0, 2)
		msg, err := req.Wait()
		if err != nil {
			return err
		}
		if !req.Test() {
			return fmt.Errorf("Test false after Wait")
		}
		if string(msg.Data) != "async" {
			return fmt.Errorf("got %q", msg.Data)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestBarrierOrdering(t *testing.T) {
	var mu sync.Mutex
	var phase1, phase2 int
	err := Run(8, func(c *Comm) error {
		mu.Lock()
		phase1++
		mu.Unlock()
		c.Barrier()
		mu.Lock()
		if phase1 != 8 {
			mu.Unlock()
			return fmt.Errorf("rank %d passed barrier with only %d arrivals", c.Rank(), phase1)
		}
		phase2++
		mu.Unlock()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if phase2 != 8 {
		t.Fatalf("phase2 = %d", phase2)
	}
}

func TestBcastAllSizesAndRoots(t *testing.T) {
	for _, n := range []int{1, 2, 3, 4, 5, 7, 8} {
		for root := 0; root < n; root += 2 {
			payload := []byte(fmt.Sprintf("bcast-%d-%d", n, root))
			err := Run(n, func(c *Comm) error {
				var data []byte
				if c.Rank() == root {
					data = payload
				}
				got, err := c.Bcast(root, data)
				if err != nil {
					return err
				}
				if string(got) != string(payload) {
					return fmt.Errorf("rank %d/%d root %d got %q", c.Rank(), n, root, got)
				}
				return nil
			})
			if err != nil {
				t.Fatalf("n=%d root=%d: %v", n, root, err)
			}
		}
	}
}

func TestReduceAndAllreduce(t *testing.T) {
	for _, n := range []int{1, 2, 3, 5, 8} {
		err := Run(n, func(c *Comm) error {
			vec := []float64{float64(c.Rank() + 1), 1}
			sum, err := c.Reduce(0, OpSum, vec)
			if err != nil {
				return err
			}
			if c.Rank() == 0 {
				want := float64(n*(n+1)) / 2
				if sum[0] != want || sum[1] != float64(n) {
					return fmt.Errorf("Reduce = %v, want [%v %v]", sum, want, n)
				}
			} else if sum != nil {
				return fmt.Errorf("non-root got %v", sum)
			}
			all, err := c.Allreduce(OpMax, []float64{float64(c.Rank())})
			if err != nil {
				return err
			}
			if all[0] != float64(n-1) {
				return fmt.Errorf("Allreduce max = %v, want %d", all[0], n-1)
			}
			return nil
		})
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
	}
}

func TestReduceOps(t *testing.T) {
	err := Run(4, func(c *Comm) error {
		v := float64(c.Rank() + 1) // 1..4
		min, err := c.Allreduce(OpMin, []float64{v})
		if err != nil {
			return err
		}
		prod, err := c.Allreduce(OpProd, []float64{v})
		if err != nil {
			return err
		}
		if min[0] != 1 || prod[0] != 24 {
			return fmt.Errorf("min=%v prod=%v", min[0], prod[0])
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestGatherScatterAllgatherAlltoall(t *testing.T) {
	err := Run(4, func(c *Comm) error {
		// Gather.
		parts, err := c.Gather(2, []byte{byte(c.Rank())})
		if err != nil {
			return err
		}
		if c.Rank() == 2 {
			for r, p := range parts {
				if len(p) != 1 || p[0] != byte(r) {
					return fmt.Errorf("Gather part %d = %v", r, p)
				}
			}
		}
		// Scatter.
		var toScatter [][]byte
		if c.Rank() == 1 {
			toScatter = [][]byte{{10}, {11}, {12}, {13}}
		}
		mine, err := c.Scatter(1, toScatter)
		if err != nil {
			return err
		}
		if len(mine) != 1 || mine[0] != byte(10+c.Rank()) {
			return fmt.Errorf("Scatter got %v", mine)
		}
		// Allgather.
		all, err := c.Allgather([]byte{byte(100 + c.Rank())})
		if err != nil {
			return err
		}
		for r, p := range all {
			if len(p) != 1 || p[0] != byte(100+r) {
				return fmt.Errorf("Allgather part %d = %v", r, p)
			}
		}
		// Alltoall.
		out := make([][]byte, 4)
		for r := range out {
			out[r] = []byte{byte(10*c.Rank() + r)}
		}
		in, err := c.Alltoall(out)
		if err != nil {
			return err
		}
		for r, p := range in {
			if len(p) != 1 || p[0] != byte(10*r+c.Rank()) {
				return fmt.Errorf("Alltoall from %d = %v", r, p)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestScanPrefix(t *testing.T) {
	for _, n := range []int{1, 2, 5, 8} {
		err := Run(n, func(c *Comm) error {
			got, err := c.Scan(OpSum, []float64{float64(c.Rank() + 1)})
			if err != nil {
				return err
			}
			r := c.Rank() + 1
			want := float64(r*(r+1)) / 2
			if got[0] != want {
				return fmt.Errorf("rank %d prefix sum = %v, want %v", c.Rank(), got[0], want)
			}
			return nil
		})
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
	}
}

func TestReduceScatter(t *testing.T) {
	const n = 4
	err := Run(n, func(c *Comm) error {
		// Rank r contributes block b = [r*10 + b] for destination b.
		blocks := make([][]float64, n)
		for b := range blocks {
			blocks[b] = []float64{float64(10*c.Rank() + b)}
		}
		got, err := c.ReduceScatter(OpSum, blocks)
		if err != nil {
			return err
		}
		// Destination d receives sum over r of (10r + d) = 60 + 4d.
		want := float64(60 + 4*c.Rank())
		if len(got) != 1 || got[0] != want {
			return fmt.Errorf("rank %d got %v, want %v", c.Rank(), got, want)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestReduceScatterValidation(t *testing.T) {
	err := Run(2, func(c *Comm) error {
		if _, err := c.ReduceScatter(OpSum, [][]float64{{1}}); err == nil {
			return fmt.Errorf("wrong block count accepted")
		}
		// Both ranks must still converge: run a correct call after.
		blocks := [][]float64{{1}, {2}}
		_, err := c.ReduceScatter(OpSum, blocks)
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSplit(t *testing.T) {
	err := Run(6, func(c *Comm) error {
		color := c.Rank() % 2
		sub, err := c.Split(color, c.Rank())
		if err != nil {
			return err
		}
		if sub.Size() != 3 {
			return fmt.Errorf("sub size = %d", sub.Size())
		}
		// Sum the original ranks within the subgroup: evens 0+2+4=6,
		// odds 1+3+5=9.
		sum, err := sub.Allreduce(OpSum, []float64{float64(c.Rank())})
		if err != nil {
			return err
		}
		want := 6.0
		if color == 1 {
			want = 9.0
		}
		if sum[0] != want {
			return fmt.Errorf("subgroup sum = %v, want %v", sum[0], want)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSplitOptOut(t *testing.T) {
	err := Run(4, func(c *Comm) error {
		color := 0
		if c.Rank() == 3 {
			color = -1
		}
		sub, err := c.Split(color, 0)
		if err != nil {
			return err
		}
		if c.Rank() == 3 {
			if sub != nil {
				return fmt.Errorf("opt-out rank got a communicator")
			}
			return nil
		}
		if sub.Size() != 3 {
			return fmt.Errorf("sub size = %d", sub.Size())
		}
		sub.Barrier()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestDupIsolatesTraffic(t *testing.T) {
	err := Run(2, func(c *Comm) error {
		dup, err := c.Dup()
		if err != nil {
			return err
		}
		if c.Rank() == 0 {
			// Same tag on both communicators; receiver must get the
			// right payload from each.
			if err := c.Send(1, 9, []byte("orig")); err != nil {
				return err
			}
			return dup.Send(1, 9, []byte("dup"))
		}
		md, err := dup.Recv(0, 9)
		if err != nil {
			return err
		}
		mo, err := c.Recv(0, 9)
		if err != nil {
			return err
		}
		if string(md.Data) != "dup" || string(mo.Data) != "orig" {
			return fmt.Errorf("dup isolation broken: %q %q", md.Data, mo.Data)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSpawnIntercomm(t *testing.T) {
	err := Run(1, func(c *Comm) error {
		ic, err := c.Spawn([]string{"viz", "viz"}, func(child *Comm, parent *Intercomm) error {
			// Children compute rank sums and report to the parent.
			sum, err := child.Allreduce(OpSum, []float64{float64(child.Rank() + 1)})
			if err != nil {
				return err
			}
			if child.Rank() == 0 {
				return parent.Send(0, 1, Float64sToBytes(sum))
			}
			return nil
		})
		if err != nil {
			return err
		}
		if ic.RemoteSize() != 2 || ic.LocalSize() != 1 {
			return fmt.Errorf("intercomm sizes %d/%d", ic.LocalSize(), ic.RemoteSize())
		}
		msg, err := ic.Recv(0, 1)
		if err != nil {
			return err
		}
		v, err := BytesToFloat64s(msg.Data)
		if err != nil {
			return err
		}
		if v[0] != 3 {
			return fmt.Errorf("children sum = %v, want 3", v[0])
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestConnectAccept(t *testing.T) {
	w := NewWorld(nil, nil)
	// Server application.
	w.Launch([]string{"t3e"}, func(c *Comm) error {
		if err := c.OpenPort("fire-viz"); err != nil {
			return err
		}
		ic, err := c.Accept("fire-viz")
		if err != nil {
			return err
		}
		msg, err := ic.Recv(0, 1)
		if err != nil {
			return err
		}
		if string(msg.Data) != "attach" {
			return fmt.Errorf("server got %q", msg.Data)
		}
		return ic.Send(0, 2, []byte("welcome"))
	})
	// Independently launched client (e.g. a visualization front-end).
	w.Launch([]string{"onyx2"}, func(c *Comm) error {
		// Wait for the port to appear (the server races us).
		var ic *Intercomm
		var err error
		for i := 0; i < 100; i++ {
			ic, err = c.Connect("fire-viz")
			if err == nil {
				break
			}
			time.Sleep(time.Millisecond)
		}
		if err != nil {
			return err
		}
		if err := ic.Send(0, 1, []byte("attach")); err != nil {
			return err
		}
		msg, err := ic.Recv(0, 2)
		if err != nil {
			return err
		}
		if string(msg.Data) != "welcome" {
			return fmt.Errorf("client got %q", msg.Data)
		}
		return nil
	})
	if err := w.Wait(); err != nil {
		t.Fatal(err)
	}
}

func TestWANShaperSlowsInterHostOnly(t *testing.T) {
	shaper := LinkShaper{Latency: 30 * time.Millisecond}
	hosts := []string{"juelich", "juelich", "staugustin"}
	var intraDur, interDur time.Duration
	err := RunHosts(hosts, shaper, nil, func(c *Comm) error {
		switch c.Rank() {
		case 0:
			start := time.Now()
			c.Send(1, 1, make([]byte, 1000)) // same host
			intraDur = time.Since(start)
			start = time.Now()
			c.Send(2, 1, make([]byte, 1000)) // cross host
			interDur = time.Since(start)
		case 1, 2:
			_, err := c.Recv(0, 1)
			return err
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if interDur < 25*time.Millisecond {
		t.Errorf("inter-host send took %v, want >= ~30ms", interDur)
	}
	if intraDur > 10*time.Millisecond {
		t.Errorf("intra-host send took %v, want fast", intraDur)
	}
}

func TestLinkShaperDelay(t *testing.T) {
	s := LinkShaper{Latency: time.Millisecond, Bps: 8e6} // 1 MB/s
	d := s.Delay(1000)                                   // 1 ms latency + 1 ms serialization
	if math.Abs(d.Seconds()-0.002) > 1e-9 {
		t.Errorf("Delay = %v", d)
	}
	free := LinkShaper{Latency: time.Millisecond}
	if free.Delay(1<<30) != time.Millisecond {
		t.Error("zero-Bps shaper should charge latency only")
	}
}

func TestFloatConversions(t *testing.T) {
	v64 := []float64{1.5, -2.25, 3e10}
	got64, err := BytesToFloat64s(Float64sToBytes(v64))
	if err != nil {
		t.Fatal(err)
	}
	for i := range v64 {
		if got64[i] != v64[i] {
			t.Fatalf("float64 roundtrip[%d]", i)
		}
	}
	v32 := []float32{0.5, -7, 1e10}
	got32, err := BytesToFloat32s(Float32sToBytes(v32))
	if err != nil {
		t.Fatal(err)
	}
	for i := range v32 {
		if got32[i] != v32[i] {
			t.Fatalf("float32 roundtrip[%d]", i)
		}
	}
	if _, err := BytesToFloat64s(make([]byte, 7)); err == nil {
		t.Error("ragged float64 bytes accepted")
	}
	if _, err := BytesToFloat32s(make([]byte, 5)); err == nil {
		t.Error("ragged float32 bytes accepted")
	}
}

func TestProbeAndIprobe(t *testing.T) {
	err := Run(2, func(c *Comm) error {
		if c.Rank() == 0 {
			// Nothing pending yet.
			if _, ok, err := c.Iprobe(1, 5); err != nil || ok {
				return fmt.Errorf("Iprobe on empty box: ok=%v err=%v", ok, err)
			}
			// Tell rank 1 to send, then probe for the payload.
			if err := c.Send(1, 1, nil); err != nil {
				return err
			}
			st, err := c.Probe(1, 5)
			if err != nil {
				return err
			}
			if st.Source != 1 || st.Tag != 5 || st.Bytes != 300 {
				return fmt.Errorf("probe status %+v", st)
			}
			// Probe must not consume: the receive still works.
			msg, err := c.Recv(1, 5)
			if err != nil {
				return err
			}
			if len(msg.Data) != 300 {
				return fmt.Errorf("recv after probe got %d bytes", len(msg.Data))
			}
			// Iprobe sees an empty box again.
			if _, ok, _ := c.Iprobe(1, 5); ok {
				return fmt.Errorf("message not consumed by Recv")
			}
			return nil
		}
		if _, err := c.Recv(0, 1); err != nil {
			return err
		}
		return c.Send(0, 5, make([]byte, 300))
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestProbeValidation(t *testing.T) {
	err := Run(1, func(c *Comm) error {
		if _, err := c.Probe(5, 0); err == nil {
			return fmt.Errorf("out-of-range probe src accepted")
		}
		if _, _, err := c.Iprobe(-4, 0); err == nil {
			return fmt.Errorf("out-of-range iprobe src accepted")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRankValidation(t *testing.T) {
	err := Run(2, func(c *Comm) error {
		if c.Rank() != 0 {
			return nil
		}
		if err := c.Send(5, 0, nil); err == nil {
			return fmt.Errorf("out-of-range dst accepted")
		}
		if _, err := c.Recv(-2, 0); err == nil {
			return fmt.Errorf("out-of-range src accepted")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRunErrorsPropagate(t *testing.T) {
	err := Run(3, func(c *Comm) error {
		if c.Rank() == 1 {
			return fmt.Errorf("rank 1 failed")
		}
		return nil
	})
	if err == nil || err.Error() != "rank 1 failed" {
		t.Fatalf("err = %v", err)
	}
}

func TestHostPlacement(t *testing.T) {
	hosts := []string{"cray-t3e", "ibm-sp2"}
	err := RunHosts(hosts, nil, nil, func(c *Comm) error {
		if c.Host() != hosts[c.Rank()] {
			return fmt.Errorf("rank %d on %q", c.Rank(), c.Host())
		}
		if c.HostOfRank(1) != "ibm-sp2" {
			return fmt.Errorf("HostOfRank wrong")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := RunHosts(nil, nil, nil, func(*Comm) error { return nil }); err == nil {
		t.Error("empty host list accepted")
	}
}
