// Package mpi is a metacomputing-aware message-passing library modeled
// on the MPI subset Pallas implemented for the Gigabit Testbed West:
// point-to-point communication (blocking and nonblocking), the usual
// collectives, communicator splitting, and the MPI-2 features the paper
// singles out as useful for metacomputing — dynamic process creation
// (Spawn) and attachment of independently started applications
// (Open/Connect/Accept), used there for realtime visualization and
// computational steering.
//
// "Metacomputing-aware" means the library distinguishes intra-machine
// from inter-machine communication: every rank is placed on a named
// host, and messages that cross hosts pass through a configurable
// Shaper that imposes the WAN's latency/bandwidth. Inside a host,
// delivery is immediate (Go channels). Applications therefore observe
// the same two-level cost structure the testbed had.
//
// Ranks are goroutines; the library is usable as a real concurrency
// tool, not only as a simulation artifact.
package mpi

import (
	"fmt"
	"sync"
	"time"
)

// Wildcards for Recv.
const (
	AnySource = -1
	AnyTag    = -1
)

// Shaper models the network between hosts. Delay returns how long a
// message of the given size occupies the path; the library sleeps that
// long (wall clock) before delivery for inter-host messages.
type Shaper interface {
	Delay(bytes int) time.Duration
}

// LinkShaper is the standard latency + bandwidth shaper.
type LinkShaper struct {
	Latency time.Duration
	Bps     float64 // payload bandwidth in bit/s; 0 = infinite
}

// Delay implements Shaper.
func (s LinkShaper) Delay(bytes int) time.Duration {
	d := s.Latency
	if s.Bps > 0 {
		d += time.Duration(float64(bytes) * 8 / s.Bps * 1e9)
	}
	return d
}

// Tracer receives communication events (see package mpitrace for the
// VAMPIR-style consumer). Implementations must be safe for concurrent
// use.
type Tracer interface {
	Event(rank int, kind string, peer, tag, bytes int, start, end time.Time)
}

// message is an in-flight point-to-point message. ctx is the
// communication context: each communicator owns separate contexts for
// point-to-point and collective traffic, so wildcard receives never
// capture messages of another communicator or of a collective.
type message struct {
	ctx      int
	src, tag int
	data     []byte
}

// mailbox is one rank's receive queue with MPI matching semantics.
type mailbox struct {
	mu   sync.Mutex
	cond *sync.Cond
	q    []message
}

func newMailbox() *mailbox {
	m := &mailbox{}
	m.cond = sync.NewCond(&m.mu)
	return m
}

func (m *mailbox) put(msg message) {
	m.mu.Lock()
	m.q = append(m.q, msg)
	m.cond.Broadcast()
	m.mu.Unlock()
}

// get blocks until a message matching (ctx, src, tag) is present and
// removes it (FIFO among matches).
func (m *mailbox) get(ctx, src, tag int) message {
	m.mu.Lock()
	defer m.mu.Unlock()
	for {
		for i, msg := range m.q {
			if msg.ctx == ctx && (src == AnySource || msg.src == src) && (tag == AnyTag || msg.tag == tag) {
				m.q = append(m.q[:i], m.q[i+1:]...)
				return msg
			}
		}
		m.cond.Wait()
	}
}

// peek blocks until a matching message is present and returns its
// metadata without removing it (MPI_Probe).
func (m *mailbox) peek(ctx, src, tag int) (msgSrc, msgTag, msgLen int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for {
		for _, msg := range m.q {
			if msg.ctx == ctx && (src == AnySource || msg.src == src) && (tag == AnyTag || msg.tag == tag) {
				return msg.src, msg.tag, len(msg.data)
			}
		}
		m.cond.Wait()
	}
}

// tryPeek is the nonblocking variant (MPI_Iprobe).
func (m *mailbox) tryPeek(ctx, src, tag int) (msgSrc, msgTag, msgLen int, ok bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, msg := range m.q {
		if msg.ctx == ctx && (src == AnySource || msg.src == src) && (tag == AnyTag || msg.tag == tag) {
			return msg.src, msg.tag, len(msg.data), true
		}
	}
	return 0, 0, 0, false
}

// World owns the global rank space of one metacomputer run.
type World struct {
	mu      sync.Mutex
	boxes   []*mailbox
	hosts   []string
	nextCtx int
	shaper  Shaper
	tracer  Tracer
	ports   map[string]*port
	wg      sync.WaitGroup
	errMu   sync.Mutex
	err     error
}

// port is a published connection point for MPI-2 Connect/Accept.
type port struct {
	serverGroup []int
	connect     chan *Intercomm
}

// NewWorld creates an empty world with the given inter-host shaper
// (nil = free networking) and optional tracer.
func NewWorld(shaper Shaper, tracer Tracer) *World {
	return &World{shaper: shaper, tracer: tracer, ports: make(map[string]*port)}
}

// addRank allocates a world rank on a host.
func (w *World) addRank(host string) int {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.boxes = append(w.boxes, newMailbox())
	w.hosts = append(w.hosts, host)
	return len(w.boxes) - 1
}

// HostOf reports the host of a world rank.
func (w *World) HostOf(worldRank int) string { return w.hosts[worldRank] }

// allocCtx reserves a fresh communication context.
func (w *World) allocCtx() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.nextCtx++
	return w.nextCtx
}

// transfer moves a message between world ranks, applying the WAN
// shaper when the endpoints are on different hosts.
func (w *World) transfer(ctx, src, dst, tag int, data []byte) {
	buf := make([]byte, len(data))
	copy(buf, data)
	if w.shaper != nil && w.hosts[src] != w.hosts[dst] {
		if d := w.shaper.Delay(len(buf)); d > 0 {
			time.Sleep(d)
		}
	}
	w.boxes[dst].put(message{ctx: ctx, src: src, tag: tag, data: buf})
}

func (w *World) setErr(err error) {
	if err == nil {
		return
	}
	w.errMu.Lock()
	if w.err == nil {
		w.err = err
	}
	w.errMu.Unlock()
}

// Err returns the first error any rank reported.
func (w *World) Err() error {
	w.errMu.Lock()
	defer w.errMu.Unlock()
	return w.err
}

// Wait blocks until every launched rank (including spawned ones) has
// returned, then reports the first error.
func (w *World) Wait() error {
	w.wg.Wait()
	return w.Err()
}

// Launch starts fn as rank len(group) of a fresh communicator whose
// ranks live on the given hosts (one rank per entry). It returns the
// communicator's world ranks.
func (w *World) Launch(hosts []string, fn func(c *Comm) error) []int {
	group := make([]int, len(hosts))
	for i, h := range hosts {
		group[i] = w.addRank(h)
	}
	p2p, coll := w.allocCtx(), w.allocCtx()
	for i := range group {
		c := &Comm{world: w, group: append([]int(nil), group...), rank: i, p2pCtx: p2p, collCtx: coll}
		w.wg.Add(1)
		go func() {
			defer w.wg.Done()
			w.setErr(fn(c))
		}()
	}
	return group
}

// Run is the common entry point: n ranks on one host ("local"), wait
// for completion.
func Run(n int, fn func(c *Comm) error) error {
	hosts := make([]string, n)
	for i := range hosts {
		hosts[i] = "local"
	}
	return RunHosts(hosts, nil, nil, fn)
}

// RunHosts places rank i on hosts[i], with inter-host traffic passing
// through shaper, and waits for completion.
func RunHosts(hosts []string, shaper Shaper, tracer Tracer, fn func(c *Comm) error) error {
	if len(hosts) == 0 {
		return fmt.Errorf("mpi: no ranks")
	}
	w := NewWorld(shaper, tracer)
	w.Launch(hosts, fn)
	return w.Wait()
}
