package mpi

import (
	"fmt"
	"sort"
)

// Internal tags for communicator-management collectives.
const (
	tagSplit = 100 + iota
	tagDup
)

// Split partitions the communicator: ranks passing the same color form
// a new communicator, ordered by (key, rank). Every rank must call
// Split; a negative color yields a nil communicator (the rank opts
// out), mirroring MPI_UNDEFINED.
func (c *Comm) Split(color, key int) (*Comm, error) {
	// Gather (color, key) pairs everywhere via Allgather on the
	// collective context.
	pairs, err := c.Allgather(Float64sToBytes([]float64{float64(color), float64(key)}))
	if err != nil {
		return nil, err
	}
	type member struct{ color, key, rank int }
	var mine []member
	for r, buf := range pairs {
		v, err := BytesToFloat64s(buf)
		if err != nil || len(v) != 2 {
			return nil, fmt.Errorf("mpi: Split framing corrupt from rank %d", r)
		}
		if int(v[0]) == color {
			mine = append(mine, member{int(v[0]), int(v[1]), r})
		}
	}
	if color < 0 {
		// Still must participate in the context agreement below to
		// keep the collective order consistent: contexts are assigned
		// deterministically from the world counter at rank 0 of each
		// new group, communicated via one more Allgather.
		if _, err := c.Allgather(nil); err != nil {
			return nil, err
		}
		return nil, nil
	}
	sort.Slice(mine, func(i, j int) bool {
		if mine[i].key != mine[j].key {
			return mine[i].key < mine[j].key
		}
		return mine[i].rank < mine[j].rank
	})
	group := make([]int, len(mine))
	newRank := -1
	for i, m := range mine {
		group[i] = c.group[m.rank]
		if m.rank == c.rank {
			newRank = i
		}
	}
	// Context agreement: the lowest old rank of each color allocates
	// the context pair and announces it via Allgather (indexed by the
	// announcing rank).
	var ann []byte
	if mine[0].rank == c.rank {
		p2p, coll := c.world.allocCtx(), c.world.allocCtx()
		ann = Float64sToBytes([]float64{float64(p2p), float64(coll)})
	}
	anns, err := c.Allgather(ann)
	if err != nil {
		return nil, err
	}
	ctxBuf := anns[mine[0].rank]
	v, err := BytesToFloat64s(ctxBuf)
	if err != nil || len(v) != 2 {
		return nil, fmt.Errorf("mpi: Split context agreement corrupt")
	}
	return &Comm{
		world: c.world, group: group, rank: newRank,
		p2pCtx: int(v[0]), collCtx: int(v[1]),
	}, nil
}

// Dup returns a communicator with the same group but fresh contexts,
// isolating its traffic from the original (libraries layered over user
// code use this, e.g. the tracing tool).
func (c *Comm) Dup() (*Comm, error) {
	var ann []byte
	if c.rank == 0 {
		p2p, coll := c.world.allocCtx(), c.world.allocCtx()
		ann = Float64sToBytes([]float64{float64(p2p), float64(coll)})
	}
	anns, err := c.Allgather(ann)
	if err != nil {
		return nil, err
	}
	v, err := BytesToFloat64s(anns[0])
	if err != nil || len(v) != 2 {
		return nil, fmt.Errorf("mpi: Dup context agreement corrupt")
	}
	return &Comm{
		world: c.world, group: append([]int(nil), c.group...), rank: c.rank,
		p2pCtx: int(v[0]), collCtx: int(v[1]),
	}, nil
}
