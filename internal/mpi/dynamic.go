package mpi

import (
	"fmt"
)

// This file implements the MPI-2 features the paper highlights for
// metacomputing: dynamic process creation (Spawn) and the attachment of
// independently started applications (Open/Connect/Accept), used in the
// testbed for realtime visualization and computational steering.

// Intercomm connects a local group with a remote group. Point-to-point
// operations address ranks of the remote group.
type Intercomm struct {
	world  *World
	local  []int // world ranks of the local group
	remote []int // world ranks of the remote group
	rank   int   // this process's rank within the local group
	ctx    int   // shared context of the bridge
}

// Rank reports the caller's rank in the local group.
func (ic *Intercomm) Rank() int { return ic.rank }

// LocalSize reports the size of the local group.
func (ic *Intercomm) LocalSize() int { return len(ic.local) }

// RemoteSize reports the size of the remote group.
func (ic *Intercomm) RemoteSize() int { return len(ic.remote) }

// Send delivers data to remote rank dst.
func (ic *Intercomm) Send(dst, tag int, data []byte) error {
	if dst < 0 || dst >= len(ic.remote) {
		return fmt.Errorf("mpi: intercomm remote rank %d out of range [0,%d)", dst, len(ic.remote))
	}
	if tag < 0 {
		return fmt.Errorf("mpi: negative tag %d is reserved", tag)
	}
	ic.world.transfer(ic.ctx, ic.local[ic.rank], ic.remote[dst], tag, data)
	return nil
}

// Recv blocks for a message from remote rank src (or AnySource).
func (ic *Intercomm) Recv(src, tag int) (Message, error) {
	worldSrc := AnySource
	if src != AnySource {
		if src < 0 || src >= len(ic.remote) {
			return Message{}, fmt.Errorf("mpi: intercomm remote rank %d out of range [0,%d)", src, len(ic.remote))
		}
		worldSrc = ic.remote[src]
	}
	msg := ic.world.boxes[ic.local[ic.rank]].get(ic.ctx, worldSrc, tag)
	commSrc := -1
	for i, w := range ic.remote {
		if w == msg.src {
			commSrc = i
			break
		}
	}
	return Message{Source: commSrc, Tag: msg.tag, Data: msg.data}, nil
}

// SendFloat32s sends a float32 slice to remote rank dst — the payload
// type of the fMRI image streams.
func (ic *Intercomm) SendFloat32s(dst, tag int, v []float32) error {
	return ic.Send(dst, tag, Float32sToBytes(v))
}

// RecvFloat32s receives a float32 slice from remote rank src.
func (ic *Intercomm) RecvFloat32s(src, tag int) ([]float32, error) {
	msg, err := ic.Recv(src, tag)
	if err != nil {
		return nil, err
	}
	return BytesToFloat32s(msg.Data)
}

// Spawn starts n new ranks running fn on the given hosts (len(hosts)
// == n) and returns an intercommunicator to them. Only the calling
// rank participates in the spawn (MPI_Comm_spawn with a root, reduced
// to the root's view); the children receive their intercomm through
// their function argument.
func (c *Comm) Spawn(hosts []string, fn func(child *Comm, parent *Intercomm) error) (*Intercomm, error) {
	if len(hosts) == 0 {
		return nil, fmt.Errorf("mpi: Spawn with no hosts")
	}
	w := c.world
	ctx := w.allocCtx()
	childGroup := make([]int, len(hosts))
	for i, h := range hosts {
		childGroup[i] = w.addRank(h)
	}
	parentIc := &Intercomm{world: w, local: append([]int(nil), c.group...), remote: childGroup, rank: c.rank, ctx: ctx}
	p2p, coll := w.allocCtx(), w.allocCtx()
	for i := range childGroup {
		childComm := &Comm{world: w, group: append([]int(nil), childGroup...), rank: i, p2pCtx: p2p, collCtx: coll}
		childIc := &Intercomm{world: w, local: append([]int(nil), childGroup...), remote: append([]int(nil), c.group...), rank: i, ctx: ctx}
		w.wg.Add(1)
		go func() {
			defer w.wg.Done()
			w.setErr(fn(childComm, childIc))
		}()
	}
	return parentIc, nil
}

// OpenPort publishes a named port owned by this communicator, like
// MPI_Open_port + MPI_Publish_name: independently started applications
// can then Connect to it by name. Opening an already-open name errors.
func (c *Comm) OpenPort(name string) error {
	w := c.world
	w.mu.Lock()
	defer w.mu.Unlock()
	if _, exists := w.ports[name]; exists {
		return fmt.Errorf("mpi: port %q already open", name)
	}
	w.ports[name] = &port{serverGroup: append([]int(nil), c.group...), connect: make(chan *Intercomm)}
	return nil
}

// Accept blocks until a client connects to the named port and returns
// the server-side intercommunicator.
func (c *Comm) Accept(name string) (*Intercomm, error) {
	c.world.mu.Lock()
	p, ok := c.world.ports[name]
	c.world.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("mpi: port %q not open", name)
	}
	// The client builds both halves; the server's half arrives here.
	ic := <-p.connect
	ic.rank = c.rank
	return ic, nil
}

// Connect attaches this communicator to the named port, returning the
// client-side intercommunicator. It blocks until the port owner calls
// Accept. This is how the testbed attached visualization front-ends to
// running simulations.
func (c *Comm) Connect(name string) (*Intercomm, error) {
	c.world.mu.Lock()
	p, ok := c.world.ports[name]
	c.world.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("mpi: port %q not open", name)
	}
	ctx := c.world.allocCtx()
	server := &Intercomm{world: c.world, local: p.serverGroup, remote: append([]int(nil), c.group...), ctx: ctx}
	client := &Intercomm{world: c.world, local: append([]int(nil), c.group...), remote: p.serverGroup, rank: c.rank, ctx: ctx}
	p.connect <- server
	return client, nil
}
