package mpi

import (
	"encoding/binary"
	"fmt"
	"math"
	"time"
)

// Comm is an intracommunicator: an ordered group of ranks with
// point-to-point and collective operations. The zero value is not
// usable; communicators come from World.Launch, Run, Split or Dup.
type Comm struct {
	world   *World
	group   []int // comm rank -> world rank
	rank    int   // this process's comm rank
	p2pCtx  int   // context for user point-to-point traffic
	collCtx int   // context for collective traffic
}

// Rank reports the calling process's rank within the communicator.
func (c *Comm) Rank() int { return c.rank }

// Size reports the number of ranks in the communicator.
func (c *Comm) Size() int { return len(c.group) }

// Host reports the host this rank is placed on.
func (c *Comm) Host() string { return c.world.HostOf(c.group[c.rank]) }

// HostOfRank reports the host of another rank in this communicator.
func (c *Comm) HostOfRank(r int) string { return c.world.HostOf(c.group[r]) }

// World returns the underlying world (shared with spawned and attached
// applications).
func (c *Comm) World() *World { return c.world }

func (c *Comm) trace(kind string, peer, tag, bytes int, start time.Time) {
	if c.world.tracer != nil {
		c.world.tracer.Event(c.group[c.rank], kind, peer, tag, bytes, start, time.Now())
	}
}

func (c *Comm) checkRank(r int) error {
	if r < 0 || r >= len(c.group) {
		return fmt.Errorf("mpi: rank %d out of range [0,%d)", r, len(c.group))
	}
	return nil
}

// Send delivers data to dst with the given tag (tag >= 0). It blocks
// for the duration of the (shaped) transfer, like a standard-mode send
// of a large message.
func (c *Comm) Send(dst, tag int, data []byte) error {
	if err := c.checkRank(dst); err != nil {
		return err
	}
	if tag < 0 {
		return fmt.Errorf("mpi: negative tag %d is reserved", tag)
	}
	start := time.Now()
	c.world.transfer(c.p2pCtx, c.group[c.rank], c.group[dst], tag, data)
	c.trace("send", dst, tag, len(data), start)
	return nil
}

// sendColl is the internal send on the collective context.
func (c *Comm) sendColl(dst, tag int, data []byte) {
	start := time.Now()
	c.world.transfer(c.collCtx, c.group[c.rank], c.group[dst], tag, data)
	c.trace("coll-send", dst, tag, len(data), start)
}

// recvColl is the internal receive on the collective context.
func (c *Comm) recvColl(src, tag int) []byte {
	worldSrc := c.group[src]
	start := time.Now()
	msg := c.world.boxes[c.group[c.rank]].get(c.collCtx, worldSrc, tag)
	c.trace("coll-recv", src, tag, len(msg.data), start)
	return msg.data
}

// Message is a received point-to-point message.
type Message struct {
	Source int // comm rank of the sender
	Tag    int
	Data   []byte
}

// Recv blocks until a message matching src (or AnySource) and tag (or
// AnyTag) arrives.
func (c *Comm) Recv(src, tag int) (Message, error) {
	if src != AnySource {
		if err := c.checkRank(src); err != nil {
			return Message{}, err
		}
	}
	worldSrc := AnySource
	if src != AnySource {
		worldSrc = c.group[src]
	}
	start := time.Now()
	msg := c.world.boxes[c.group[c.rank]].get(c.p2pCtx, worldSrc, tag)
	commSrc := c.rankOfWorld(msg.src)
	c.trace("recv", commSrc, msg.tag, len(msg.data), start)
	return Message{Source: commSrc, Tag: msg.tag, Data: msg.data}, nil
}

// rankOfWorld maps a world rank back to a comm rank (-1 if the sender
// is outside this communicator, e.g. intercomm traffic).
func (c *Comm) rankOfWorld(w int) int {
	for i, g := range c.group {
		if g == w {
			return i
		}
	}
	return -1
}

// Status describes a pending message found by Probe/Iprobe.
type Status struct {
	Source int // comm rank of the sender (-1 if outside the comm)
	Tag    int
	Bytes  int
}

// Probe blocks until a message matching src/tag is available and
// returns its status without receiving it (MPI_Probe) — the idiom the
// RT-client uses to size buffers before pulling variable-size images.
func (c *Comm) Probe(src, tag int) (Status, error) {
	worldSrc := AnySource
	if src != AnySource {
		if err := c.checkRank(src); err != nil {
			return Status{}, err
		}
		worldSrc = c.group[src]
	}
	s, tg, n := c.world.boxes[c.group[c.rank]].peek(c.p2pCtx, worldSrc, tag)
	return Status{Source: c.rankOfWorld(s), Tag: tg, Bytes: n}, nil
}

// Iprobe reports whether a matching message is available, without
// blocking (MPI_Iprobe).
func (c *Comm) Iprobe(src, tag int) (Status, bool, error) {
	worldSrc := AnySource
	if src != AnySource {
		if err := c.checkRank(src); err != nil {
			return Status{}, false, err
		}
		worldSrc = c.group[src]
	}
	s, tg, n, ok := c.world.boxes[c.group[c.rank]].tryPeek(c.p2pCtx, worldSrc, tag)
	if !ok {
		return Status{}, false, nil
	}
	return Status{Source: c.rankOfWorld(s), Tag: tg, Bytes: n}, true, nil
}

// Sendrecv performs a combined send and receive, safe against the
// head-to-head exchange deadlock.
func (c *Comm) Sendrecv(dst, sendTag int, data []byte, src, recvTag int) (Message, error) {
	errc := make(chan error, 1)
	go func() { errc <- c.Send(dst, sendTag, data) }()
	msg, err := c.Recv(src, recvTag)
	if err != nil {
		return Message{}, err
	}
	if err := <-errc; err != nil {
		return Message{}, err
	}
	return msg, nil
}

// Request is a handle for a nonblocking operation.
type Request struct {
	done chan struct{}
	msg  Message
	err  error
}

// Wait blocks until the operation completes and returns its result.
// The Message is meaningful for Irecv requests only.
func (r *Request) Wait() (Message, error) {
	<-r.done
	return r.msg, r.err
}

// Test reports whether the operation has completed without blocking.
func (r *Request) Test() bool {
	select {
	case <-r.done:
		return true
	default:
		return false
	}
}

// Isend starts a nonblocking send.
func (c *Comm) Isend(dst, tag int, data []byte) *Request {
	req := &Request{done: make(chan struct{})}
	go func() {
		req.err = c.Send(dst, tag, data)
		close(req.done)
	}()
	return req
}

// Irecv starts a nonblocking receive.
func (c *Comm) Irecv(src, tag int) *Request {
	req := &Request{done: make(chan struct{})}
	go func() {
		req.msg, req.err = c.Recv(src, tag)
		close(req.done)
	}()
	return req
}

// WaitAll waits for all requests and returns the first error.
func WaitAll(reqs ...*Request) error {
	var first error
	for _, r := range reqs {
		if _, err := r.Wait(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// --- Typed helpers (the "language interoperability" face of the
// library: a byte-oriented core with typed encodings on top). ---

// Float64sToBytes encodes a float64 slice little-endian.
func Float64sToBytes(v []float64) []byte {
	buf := make([]byte, 8*len(v))
	for i, f := range v {
		binary.LittleEndian.PutUint64(buf[8*i:], math.Float64bits(f))
	}
	return buf
}

// BytesToFloat64s decodes a little-endian float64 slice.
func BytesToFloat64s(b []byte) ([]float64, error) {
	if len(b)%8 != 0 {
		return nil, fmt.Errorf("mpi: byte length %d not a multiple of 8", len(b))
	}
	out := make([]float64, len(b)/8)
	for i := range out {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(b[8*i:]))
	}
	return out, nil
}

// Float32sToBytes encodes a float32 slice little-endian.
func Float32sToBytes(v []float32) []byte {
	buf := make([]byte, 4*len(v))
	for i, f := range v {
		binary.LittleEndian.PutUint32(buf[4*i:], math.Float32bits(f))
	}
	return buf
}

// BytesToFloat32s decodes a little-endian float32 slice.
func BytesToFloat32s(b []byte) ([]float32, error) {
	if len(b)%4 != 0 {
		return nil, fmt.Errorf("mpi: byte length %d not a multiple of 4", len(b))
	}
	out := make([]float32, len(b)/4)
	for i := range out {
		out[i] = math.Float32frombits(binary.LittleEndian.Uint32(b[4*i:]))
	}
	return out, nil
}

// SendFloat64s sends a float64 slice.
func (c *Comm) SendFloat64s(dst, tag int, v []float64) error {
	return c.Send(dst, tag, Float64sToBytes(v))
}

// RecvFloat64s receives a float64 slice.
func (c *Comm) RecvFloat64s(src, tag int) ([]float64, error) {
	msg, err := c.Recv(src, tag)
	if err != nil {
		return nil, err
	}
	return BytesToFloat64s(msg.Data)
}
