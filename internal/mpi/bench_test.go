package mpi

import (
	"fmt"
	"testing"
)

// BenchmarkAllreduce measures the collective the coupled applications
// lean on, across communicator sizes.
func BenchmarkAllreduce(b *testing.B) {
	for _, n := range []int{2, 4, 8} {
		n := n
		b.Run(fmt.Sprintf("ranks=%d", n), func(b *testing.B) {
			vec := []float64{1, 2, 3, 4}
			err := Run(n, func(c *Comm) error {
				for i := 0; i < b.N; i++ {
					if _, err := c.Allreduce(OpSum, vec); err != nil {
						return err
					}
				}
				return nil
			})
			if err != nil {
				b.Fatal(err)
			}
		})
	}
}

// BenchmarkP2PLatency measures the in-memory point-to-point round trip.
func BenchmarkP2PLatency(b *testing.B) {
	err := Run(2, func(c *Comm) error {
		for i := 0; i < b.N; i++ {
			if c.Rank() == 0 {
				if err := c.Send(1, 1, nil); err != nil {
					return err
				}
				if _, err := c.Recv(1, 2); err != nil {
					return err
				}
			} else {
				if _, err := c.Recv(0, 1); err != nil {
					return err
				}
				if err := c.Send(0, 2, nil); err != nil {
					return err
				}
			}
		}
		return nil
	})
	if err != nil {
		b.Fatal(err)
	}
}
