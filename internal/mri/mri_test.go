package mri

import (
	"math"
	"testing"
)

func TestHRFPeaksAtDelay(t *testing.T) {
	h := HRF{Delay: 6, Dispersion: 1}
	peak := h.Eval(6)
	for _, tt := range []float64{1, 3, 5, 7, 9, 15} {
		if h.Eval(tt) > peak {
			t.Errorf("HRF(%v) = %v exceeds peak at delay %v", tt, h.Eval(tt), peak)
		}
	}
	if h.Eval(0) != 0 || h.Eval(-1) != 0 {
		t.Error("HRF should vanish at t <= 0")
	}
	if math.Abs(peak-1) > 1e-12 {
		t.Errorf("peak value = %v, want 1 (normalized form)", peak)
	}
}

func TestHRFDegenerateParams(t *testing.T) {
	if (HRF{Delay: 0, Dispersion: 1}).Eval(1) != 0 {
		t.Error("zero delay should yield 0")
	}
	if (HRF{Delay: 5, Dispersion: 0}).Eval(1) != 0 {
		t.Error("zero dispersion should yield 0")
	}
}

func TestConvolveNormalized(t *testing.T) {
	stim := BlockStimulus(64, 8)
	ref := DefaultHRF.Convolve(stim, 2.0)
	if len(ref) != 64 {
		t.Fatalf("len = %d", len(ref))
	}
	var mean, ss float64
	for _, v := range ref {
		mean += v
	}
	mean /= 64
	for _, v := range ref {
		ss += (v - mean) * (v - mean)
	}
	if math.Abs(mean) > 1e-10 {
		t.Errorf("reference mean = %g, want 0", mean)
	}
	if math.Abs(ss/64-1) > 1e-10 {
		t.Errorf("reference variance = %g, want 1", ss/64)
	}
}

func TestConvolveConstantStimulusIsZero(t *testing.T) {
	stim := make([]float64, 32) // all rest
	ref := DefaultHRF.Convolve(stim, 2.0)
	for _, v := range ref {
		if v != 0 {
			t.Fatal("constant stimulus should give a zero reference")
		}
	}
}

func TestConvolveDelayShiftsResponse(t *testing.T) {
	stim := BlockStimulus(64, 8)
	early := HRF{Delay: 4, Dispersion: 1}.Convolve(stim, 2.0)
	late := HRF{Delay: 10, Dispersion: 1}.Convolve(stim, 2.0)
	// Cross-correlation at zero lag between early and late responses
	// should be below the early-early autocorrelation.
	dot := func(a, b []float64) float64 {
		var s float64
		for i := range a {
			s += a[i] * b[i]
		}
		return s
	}
	if dot(early, late) >= dot(early, early)-1 {
		t.Errorf("late HRF response should decorrelate from early one: %v vs %v",
			dot(early, late), dot(early, early))
	}
}

func TestBlockStimulus(t *testing.T) {
	s := BlockStimulus(32, 8)
	for i := 0; i < 8; i++ {
		if s[i] != 0 {
			t.Fatal("first block should be rest")
		}
	}
	for i := 8; i < 16; i++ {
		if s[i] != 1 {
			t.Fatal("second block should be task")
		}
	}
}

func TestPhantomStructure(t *testing.T) {
	ph := NewPhantom(64, 64, 16, nil)
	if ph.Anatomy.NX != 64 || ph.Anatomy.NZ != 16 {
		t.Fatal("dims")
	}
	// Center should be brain, corner should be air.
	if !ph.BrainMask[ph.Anatomy.Idx(32, 32, 8)] {
		t.Error("center voxel not brain")
	}
	if ph.BrainMask[ph.Anatomy.Idx(0, 0, 0)] {
		t.Error("corner voxel marked brain")
	}
	if ph.Anatomy.At(0, 0, 0) != 0 {
		t.Error("air should have zero signal")
	}
	if ph.Anatomy.At(32, 32, 8) < 500 {
		t.Error("brain should have strong signal")
	}
	// Brain occupies a plausible interior fraction.
	n := 0
	for _, b := range ph.BrainMask {
		if b {
			n++
		}
	}
	frac := float64(n) / float64(len(ph.BrainMask))
	if frac < 0.1 || frac > 0.6 {
		t.Errorf("brain fraction = %.2f", frac)
	}
}

func TestActivationWeight(t *testing.T) {
	a := Activation{CX: 10, CY: 10, CZ: 5, Radius: 3, Amplitude: 0.05, HRF: DefaultHRF}
	if w := a.ActivationWeight(10, 10, 5); math.Abs(w-1) > 1e-12 {
		t.Errorf("center weight = %v", w)
	}
	if w := a.ActivationWeight(14, 10, 5); w != 0 {
		t.Errorf("outside weight = %v", w)
	}
	mid := a.ActivationWeight(11, 10, 5)
	if mid <= 0 || mid >= 1 {
		t.Errorf("interior weight = %v", mid)
	}
}

func TestScannerSeriesActivationVisible(t *testing.T) {
	act := Activation{CX: 32, CY: 32, CZ: 8, Radius: 4, Amplitude: 0.05, HRF: DefaultHRF}
	ph := NewPhantom(64, 64, 16, []Activation{act})
	cfg := ScanConfig{NX: 64, NY: 64, NZ: 16, TR: 2, NScans: 48, NoiseStd: 2, Seed: 11}
	sc := NewScanner(ph, cfg)
	var series []float32
	for {
		v := sc.Next()
		if v == nil {
			break
		}
		series = append(series, v.At(32, 32, 8))
	}
	if len(series) != 48 {
		t.Fatalf("%d scans", len(series))
	}
	if sc.ScansDone() != 48 {
		t.Errorf("ScansDone = %d", sc.ScansDone())
	}
	// Correlate the voxel series with the scanner's own reference:
	// must be strongly positive.
	ref := sc.Reference(0)
	var mean float64
	for _, v := range series {
		mean += float64(v)
	}
	mean /= float64(len(series))
	var num, den float64
	for i, v := range series {
		num += (float64(v) - mean) * ref[i]
		den += (float64(v) - mean) * (float64(v) - mean)
	}
	r := num / math.Sqrt(den*float64(len(ref)))
	if r < 0.8 {
		t.Errorf("activated voxel correlation = %.3f, want > 0.8", r)
	}
}

func TestScannerQuietVoxelUncorrelated(t *testing.T) {
	act := Activation{CX: 16, CY: 16, CZ: 4, Radius: 3, Amplitude: 0.05, HRF: DefaultHRF}
	ph := NewPhantom(64, 64, 16, []Activation{act})
	cfg := ScanConfig{NX: 64, NY: 64, NZ: 16, TR: 2, NScans: 48, NoiseStd: 2, Seed: 5}
	sc := NewScanner(ph, cfg)
	var series []float64
	for {
		v := sc.Next()
		if v == nil {
			break
		}
		series = append(series, float64(v.At(45, 45, 12))) // far from activation
	}
	ref := sc.Reference(0)
	var mean float64
	for _, v := range series {
		mean += v
	}
	mean /= float64(len(series))
	var num, den float64
	for i, v := range series {
		num += (v - mean) * ref[i]
		den += (v - mean) * (v - mean)
	}
	r := num / math.Sqrt(den*float64(len(ref)))
	if math.Abs(r) > 0.5 {
		t.Errorf("quiet voxel correlation = %.3f, want ~0", r)
	}
}

func TestScannerMotionApplied(t *testing.T) {
	ph := NewPhantom(32, 32, 8, nil)
	motion := make([]Shift, 2)
	motion[1] = Shift{DX: 3, DY: 0, DZ: 0}
	cfg := ScanConfig{NX: 32, NY: 32, NZ: 8, TR: 2, NScans: 2, Motion: motion, Seed: 1}
	sc := NewScanner(ph, cfg)
	v0 := sc.Next()
	v1 := sc.Next()
	// The shifted frame differs from the first mostly by translation:
	// shifting v1 back should approximately restore v0.
	back := v1.Shift(-3, 0, 0)
	var diff, ref float64
	for z := 1; z < 7; z++ {
		for y := 2; y < 30; y++ {
			for x := 4; x < 28; x++ { // interior, away from clamped edges
				d := float64(back.At(x, y, z) - v0.At(x, y, z))
				diff += d * d
				ref += float64(v0.At(x, y, z)) * float64(v0.At(x, y, z))
			}
		}
	}
	if diff/ref > 1e-3 {
		t.Errorf("relative restore error %.2e, motion not a clean shift", diff/ref)
	}
}

func TestScannerExhaustion(t *testing.T) {
	ph := NewPhantom(16, 16, 4, nil)
	sc := NewScanner(ph, ScanConfig{NX: 16, NY: 16, NZ: 4, TR: 2, NScans: 1})
	if sc.Next() == nil {
		t.Fatal("first scan nil")
	}
	if sc.Next() != nil {
		t.Fatal("scanner did not stop after NScans")
	}
}
