package mri

import (
	"testing"
)

func TestMultiEchoOrderOfMagnitude(t *testing.T) {
	std := StandardAcquisition()
	adv := ReferenceMultiEcho()
	if err := std.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := adv.Validate(); err != nil {
		t.Fatal(err)
	}
	ratio := adv.DataRateBps() / std.DataRateBps()
	// "an order of magnitude beyond what is feasible today":
	// 8 echoes x 4x matrix = 32x.
	if ratio < 10 {
		t.Errorf("advanced/standard data rate = %.1fx, paper claims an order of magnitude", ratio)
	}
	if adv.WorkScale() != ratio {
		t.Errorf("work scale %v != data ratio %v (both are voxel-proportional)", adv.WorkScale(), ratio)
	}
}

func TestMultiEchoRates(t *testing.T) {
	std := StandardAcquisition()
	// 64*64*16 voxels * 4 B / 2 s = 131072 B/s ~ 1.05 Mbit/s.
	if got := std.DataRateBps(); got != 64*64*16*4*8/2 {
		t.Errorf("standard rate = %v", got)
	}
	if std.VoxelsPerVolume() != 65536 {
		t.Errorf("voxels = %d", std.VoxelsPerVolume())
	}
}

func TestMultiEchoValidate(t *testing.T) {
	bad := MultiEcho{Echoes: 0, NX: 64, NY: 64, NZ: 16, TR: 2}
	if err := bad.Validate(); err == nil {
		t.Error("zero echoes accepted")
	}
	bad = MultiEcho{Echoes: 1, NX: 64, NY: 64, NZ: 16, TR: 0}
	if err := bad.Validate(); err == nil {
		t.Error("zero TR accepted")
	}
}
