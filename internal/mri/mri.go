// Package mri simulates the 1.5 Tesla Siemens Vision MRI scanner of the
// Institute of Medicine: a phantom head with tissue contrast, BOLD
// activation synthesized by convolving a stimulation time course with a
// hemodynamic response function (HRF), Gaussian thermal noise, slow
// baseline drift, and rigid subject motion. It also models the
// acquisition timing (repetition time TR, and the ~1.5 s delay before a
// 64x64x16 image is available at the RT-server).
//
// The ground truth (which voxels activate, with what delay/dispersion)
// is retained so the FIRE analysis chain can be validated end to end.
package mri

import (
	"math"
	"math/rand"

	"repro/internal/volume"
)

// HRF is a gamma-variate hemodynamic response model parameterized the
// way the paper's reference-vector optimization treats it: by the delay
// and dispersion (duration) of the blood-flow response to neuronal
// activation.
type HRF struct {
	// Delay is the time-to-peak of the response in seconds.
	Delay float64
	// Dispersion controls the width (duration) of the response in
	// seconds.
	Dispersion float64
}

// DefaultHRF is the canonical response: ~6 s to peak, ~1 s dispersion
// scale.
var DefaultHRF = HRF{Delay: 6.0, Dispersion: 1.0}

// Eval returns the response at t seconds after a unit impulse.
// The kernel is the gamma-variate (t/d)^a exp(-(t-d)/b) with shape
// a = Delay/Dispersion and scale b = Dispersion, peaking at t = Delay.
func (h HRF) Eval(t float64) float64 {
	if t <= 0 || h.Delay <= 0 || h.Dispersion <= 0 {
		return 0
	}
	a := h.Delay / h.Dispersion
	return math.Pow(t/h.Delay, a) * math.Exp(-(t-h.Delay)/h.Dispersion)
}

// Convolve returns the stimulus time course (sampled every tr seconds)
// convolved with the HRF, normalized to zero mean and unit variance —
// the paper's "reference vector". A constant (all-zero or all-one)
// stimulus yields a zero vector.
func (h HRF) Convolve(stim []float64, tr float64) []float64 {
	n := len(stim)
	out := make([]float64, n)
	// Discretize the kernel out to where it has decayed (~delay+10*disp).
	klen := int((h.Delay+10*h.Dispersion)/tr) + 1
	kernel := make([]float64, klen)
	for i := range kernel {
		kernel[i] = h.Eval(float64(i) * tr)
	}
	for i := 0; i < n; i++ {
		var s float64
		for j := 0; j <= i && j < klen; j++ {
			s += kernel[j] * stim[i-j]
		}
		out[i] = s
	}
	normalize(out)
	return out
}

// normalize demeans and scales to unit variance in place (no-op for
// constant vectors).
func normalize(v []float64) {
	var mean float64
	for _, x := range v {
		mean += x
	}
	mean /= float64(len(v))
	var ss float64
	for i := range v {
		v[i] -= mean
		ss += v[i] * v[i]
	}
	if ss == 0 {
		return
	}
	inv := 1 / math.Sqrt(ss/float64(len(v)))
	for i := range v {
		v[i] *= inv
	}
}

// BlockStimulus builds the classic block-design stimulation time
// course: alternating rest/task blocks of blockScans scans each,
// starting with rest, for nScans scans.
func BlockStimulus(nScans, blockScans int) []float64 {
	s := make([]float64, nScans)
	for i := range s {
		if (i/blockScans)%2 == 1 {
			s[i] = 1
		}
	}
	return s
}

// Activation is a spherical activation site with its own hemodynamics.
type Activation struct {
	CX, CY, CZ float64 // center, voxel units
	Radius     float64 // voxels
	Amplitude  float64 // fractional BOLD signal change (e.g. 0.03)
	HRF        HRF
}

// Phantom is a synthetic head: an anatomical baseline plus activation
// sites.
type Phantom struct {
	Anatomy     *volume.Volume
	BrainMask   []bool // true where tissue signal is meaningful
	Activations []Activation
}

// NewPhantom builds an ellipsoidal head with a brain interior, a skull
// shell, and the given activation sites. Dimensions follow the paper's
// standard 64x64x16 acquisition unless changed by the caller.
func NewPhantom(nx, ny, nz int, acts []Activation) *Phantom {
	v := volume.New(nx, ny, nz)
	mask := make([]bool, v.Voxels())
	cx, cy, cz := float64(nx-1)/2, float64(ny-1)/2, float64(nz-1)/2
	rx, ry, rz := float64(nx)*0.42, float64(ny)*0.42, float64(nz)*0.46
	for z := 0; z < nz; z++ {
		for y := 0; y < ny; y++ {
			for x := 0; x < nx; x++ {
				ex := (float64(x) - cx) / rx
				ey := (float64(y) - cy) / ry
				ez := (float64(z) - cz) / rz
				r := ex*ex + ey*ey + ez*ez
				idx := v.Idx(x, y, z)
				switch {
				case r < 0.75: // brain tissue with mild spatial texture
					v.Data[idx] = float32(800 + 150*math.Sin(float64(x)*0.4)*math.Cos(float64(y)*0.3) + 50*math.Sin(float64(z)))
					mask[idx] = true
				case r < 1.0: // skull/scalp shell
					v.Data[idx] = 300
				default: // air
					v.Data[idx] = 0
				}
			}
		}
	}
	return &Phantom{Anatomy: v, BrainMask: mask, Activations: acts}
}

// ActivationWeight reports the activation envelope of site a at voxel
// (x, y, z): 1 at the center falling smoothly to 0 at the radius.
func (a Activation) ActivationWeight(x, y, z int) float64 {
	dx := float64(x) - a.CX
	dy := float64(y) - a.CY
	dz := float64(z) - a.CZ
	d := math.Sqrt(dx*dx+dy*dy+dz*dz) / a.Radius
	if d >= 1 {
		return 0
	}
	return 0.5 * (1 + math.Cos(math.Pi*d))
}

// ScanConfig configures a simulated acquisition run.
type ScanConfig struct {
	NX, NY, NZ   int
	TR           float64 // repetition time, seconds (paper: up to 2 s)
	NScans       int
	Stimulus     []float64 // len NScans; nil = block design 8-scan blocks
	NoiseStd     float64   // thermal noise std dev in signal units
	DriftPerScan float64   // linear baseline drift in signal units/scan
	// Motion is an optional per-scan rigid translation (voxels);
	// index t gives the subject displacement during scan t.
	Motion []Shift
	Seed   int64
}

// Shift is a rigid translation in voxel units.
type Shift struct{ DX, DY, DZ float64 }

// Scanner generates the EPI time series for a phantom.
type Scanner struct {
	Phantom *Phantom
	Cfg     ScanConfig
	refs    [][]float64 // per-activation expected responses
	rng     *rand.Rand
	t       int
}

// NewScanner prepares an acquisition of cfg.NScans volumes.
func NewScanner(ph *Phantom, cfg ScanConfig) *Scanner {
	if cfg.Stimulus == nil {
		cfg.Stimulus = BlockStimulus(cfg.NScans, 8)
	}
	s := &Scanner{Phantom: ph, Cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed + 1))}
	for _, a := range ph.Activations {
		s.refs = append(s.refs, a.HRF.Convolve(cfg.Stimulus, cfg.TR))
	}
	return s
}

// ScansDone reports how many volumes have been generated so far.
func (s *Scanner) ScansDone() int { return s.t }

// Next synthesizes the next volume in the series, or returns nil when
// the acquisition is complete.
func (s *Scanner) Next() *volume.Volume {
	if s.t >= s.Cfg.NScans {
		return nil
	}
	ph := s.Phantom
	base := ph.Anatomy
	out := volume.New(base.NX, base.NY, base.NZ)
	drift := s.Cfg.DriftPerScan * float64(s.t)
	for z := 0; z < base.NZ; z++ {
		for y := 0; y < base.NY; y++ {
			for x := 0; x < base.NX; x++ {
				idx := base.Idx(x, y, z)
				sig := float64(base.Data[idx])
				if ph.BrainMask[idx] {
					for ai, a := range ph.Activations {
						w := a.ActivationWeight(x, y, z)
						if w > 0 {
							sig *= 1 + a.Amplitude*w*s.refs[ai][s.t]
						}
					}
					sig += drift
				}
				if s.Cfg.NoiseStd > 0 {
					sig += s.rng.NormFloat64() * s.Cfg.NoiseStd
				}
				out.Data[idx] = float32(sig)
			}
		}
	}
	if s.Cfg.Motion != nil && s.t < len(s.Cfg.Motion) {
		m := s.Cfg.Motion[s.t]
		if m.DX != 0 || m.DY != 0 || m.DZ != 0 {
			out = out.Shift(m.DX, m.DY, m.DZ)
		}
	}
	s.t++
	return out
}

// Reference returns the normalized expected response of activation i —
// what an ideal analysis should correlate against.
func (s *Scanner) Reference(i int) []float64 { return s.refs[i] }

// Timing constants from section 4 of the paper.
const (
	// AvailabilityDelay is the time after a scan completes before the
	// raw 64x64x16 image is available at the RT-server (~1.5 s).
	AvailabilityDelay = 1.5
	// TypicalTR is the repetition time used in most experiments (s).
	TypicalTR = 2.0
	// SafeTR is the repetition rate the unpipelined system sustains
	// (the paper operates the scanner at 3 s).
	SafeTR = 3.0
)
