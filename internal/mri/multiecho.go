package mri

import "fmt"

// Multi-echo imaging: the paper closes section 4 noting that "advanced
// MR imaging techniques which are under development [single-shot
// multi-echo fMRI, ref 9] will produce data rates that are an order of
// magnitude beyond what is feasible today. Analysing this data in
// realtime will be a challenging task for a supercomputer again."
// MultiEcho quantifies that claim against the T3E cost model.

// MultiEcho describes an advanced acquisition.
type MultiEcho struct {
	// Echoes is the number of echoes acquired per excitation
	// (single-shot multi-echo EPI; ref [9] used up to ~8).
	Echoes int
	// NX, NY, NZ is the image matrix per echo.
	NX, NY, NZ int
	// TR is the volume repetition time in seconds.
	TR float64
}

// StandardAcquisition is the paper's baseline: 64x64x16 single-echo at
// TR 2 s.
func StandardAcquisition() MultiEcho {
	return MultiEcho{Echoes: 1, NX: 64, NY: 64, NZ: 16, TR: 2}
}

// ReferenceMultiEcho is the ref-[9]-style acquisition: 8 echoes on a
// doubled in-plane matrix at the same TR.
func ReferenceMultiEcho() MultiEcho {
	return MultiEcho{Echoes: 8, NX: 128, NY: 128, NZ: 16, TR: 2}
}

// Validate checks the configuration.
func (a MultiEcho) Validate() error {
	if a.Echoes < 1 || a.NX < 1 || a.NY < 1 || a.NZ < 1 || a.TR <= 0 {
		return fmt.Errorf("mri: invalid acquisition %+v", a)
	}
	return nil
}

// VoxelsPerVolume reports voxels acquired per TR (all echoes).
func (a MultiEcho) VoxelsPerVolume() int { return a.Echoes * a.NX * a.NY * a.NZ }

// DataRateBps reports the raw acquisition data rate in bit/s at 4
// bytes per voxel.
func (a MultiEcho) DataRateBps() float64 {
	return float64(a.VoxelsPerVolume()) * 4 * 8 / a.TR
}

// WorkScale reports the analysis-work multiplier relative to the
// standard acquisition (work scales with acquired voxels).
func (a MultiEcho) WorkScale() float64 {
	std := StandardAcquisition()
	return float64(a.VoxelsPerVolume()) / float64(std.VoxelsPerVolume())
}
