package benchkit

import (
	"os"
	"runtime"
	"testing"
)

// TestMulticoreSpeedup is the CI smoke for the parallel-speedup claim:
// on >= 2 cores, the large-topology load on 2 kernels must not be
// slower than on 1. Every other PDES gate in the tree runs on whatever
// core count the runner happens to have — often 1, where the ratio only
// bounds synchronization overhead; this test is the one place the
// speedup itself is asserted, so it runs only when explicitly asked
// (GTW_MULTICORE_SMOKE=1, with GOMAXPROCS pinned by the CI step).
//
// The slack factor is deliberately generous: shared CI runners are
// noisy, and the point is to catch the parallel path regressing to
// slower-than-serial, not to pin a precise ratio.
func TestMulticoreSpeedup(t *testing.T) {
	if os.Getenv("GTW_MULTICORE_SMOKE") == "" {
		t.Skip("set GTW_MULTICORE_SMOKE=1 to run the multicore speedup smoke")
	}
	if p := runtime.GOMAXPROCS(0); p < 2 {
		t.Skipf("GOMAXPROCS=%d: the speedup claim needs at least 2 cores", p)
	}
	if n := runtime.NumCPU(); n < 2 {
		// GOMAXPROCS=2 on one physical core only time-shares: the
		// 2-kernel run measures scheduler interleaving, not parallel
		// execution, and the ratio is noise either side of 1.
		t.Skipf("NumCPU=%d: two OS threads on one core cannot show a speedup", n)
	}
	serial := testing.Benchmark(func(b *testing.B) { pdesLargeTopology(b, 1) })
	parallel := testing.Benchmark(func(b *testing.B) { pdesLargeTopology(b, 2) })
	const slack = 1.2
	s, p := float64(serial.NsPerOp()), float64(parallel.NsPerOp())
	t.Logf("1 kernel %.0f ns/op, 2 kernels %.0f ns/op (speedup %.2fx)", s, p, s/p)
	if p > s*slack {
		t.Fatalf("2-kernel run %.0f ns/op exceeds 1-kernel %.0f ns/op beyond %.0f%% slack: the parallel path lost its speedup",
			p, s, (slack-1)*100)
	}
}
