// Package benchkit holds the kernel/network/TCP hot-path benchmark
// bodies in importable form, so the same code runs both under `go test
// -bench` (via thin Benchmark* wrappers in the owning packages) and
// inside cmd/gtwbench, which executes them with testing.Benchmark and
// emits a machine-readable BENCH_kernel.json for tracking the
// simulator's perf trajectory across PRs.
package benchkit

import (
	"context"
	"fmt"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/netsim"
	"repro/internal/sim"
	"repro/internal/sim/pdes"
	"repro/internal/tcpsim"
)

// EventThroughput measures raw event scheduling+dispatch rate, the
// figure that bounds every simulation in this repository.
func EventThroughput(b *testing.B) {
	k := sim.NewKernel()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k.After(time.Microsecond, func() {})
		k.Step()
	}
}

// EventHeap measures scheduling+cancelling with a deep pending queue.
func EventHeap(b *testing.B) {
	k := sim.NewKernel()
	for i := 0; i < 10000; i++ {
		k.At(sim.Time(1e12+int64(i)), func() {})
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e := k.After(time.Millisecond, func() {})
		k.Cancel(e)
	}
}

// ProcContextSwitch measures the cooperative process handoff cost (two
// goroutine switches per Sleep).
func ProcContextSwitch(b *testing.B) {
	k := sim.NewKernel()
	k.Go("switcher", func(p *sim.Proc) {
		for i := 0; i < b.N; i++ {
			p.Sleep(time.Nanosecond)
		}
	})
	b.ReportAllocs()
	b.ResetTimer()
	k.Run()
}

// ChanSendRecv measures virtual-time channel rendezvous.
func ChanSendRecv(b *testing.B) {
	k := sim.NewKernel()
	c := sim.NewChan[int](k, 0)
	k.Go("recv", func(p *sim.Proc) {
		for i := 0; i < b.N; i++ {
			c.Recv(p)
		}
	})
	k.Go("send", func(p *sim.Proc) {
		for i := 0; i < b.N; i++ {
			c.Send(p, i)
		}
	})
	b.ReportAllocs()
	b.ResetTimer()
	k.Run()
}

// twoHosts builds a minimal two-node topology for the packet benches.
func twoHosts(cfg netsim.LinkConfig) (*netsim.Network, *netsim.Node, *netsim.Node) {
	k := sim.NewKernel()
	n := netsim.New(k)
	a := n.AddNode("a")
	z := n.AddNode("z")
	n.Connect(a, z, cfg)
	n.ComputeRoutes()
	return n, a, z
}

// PacketDelivery measures end-to-end packet cost over one link (send,
// serialize, propagate, deliver) using the pooled-packet path.
func PacketDelivery(b *testing.B) {
	n, a, dst := twoHosts(netsim.LinkConfig{Bps: 1e12, Delay: time.Microsecond, MTU: 65536, QueueBytes: 1 << 40})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := n.NewPacket()
		p.Src, p.Dst, p.Bytes = a.ID, dst.ID, 1000
		n.Send(p)
		n.K.Run()
	}
}

// MultiHopForwarding measures a 4-hop store-and-forward path.
func MultiHopForwarding(b *testing.B) {
	k := sim.NewKernel()
	n := netsim.New(k)
	nodes := make([]*netsim.Node, 5)
	for i := range nodes {
		nodes[i] = n.AddNode("n", netsim.WithForwardCost(time.Microsecond, 1e12))
	}
	for i := 0; i < 4; i++ {
		n.Connect(nodes[i], nodes[i+1], netsim.LinkConfig{Bps: 1e12, Delay: time.Microsecond, MTU: 65536})
	}
	n.ComputeRoutes()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := n.NewPacket()
		p.Src, p.Dst, p.Bytes = nodes[0].ID, nodes[4].ID, 1000
		n.Send(p)
		n.K.Run()
	}
}

// TCPTransfer measures a full end-to-end TCP bulk transfer (slow
// start, windowing, ACK clocking) of 1 MiB over a gigabit link — the
// composite cost every throughput scenario pays per flow.
func TCPTransfer(b *testing.B) {
	n, a, z := twoHosts(netsim.LinkConfig{Bps: 1e9, Delay: 500 * time.Microsecond, MTU: 9180, QueueBytes: 1 << 30})
	const bytes = 1 << 20
	b.SetBytes(bytes)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tcpsim.Transfer(n, a.ID, z.ID, bytes, tcpsim.Config{}); err != nil {
			b.Fatal(err)
		}
	}
}

// benchSweep builds the sweep the sharding benchmarks run: 8 grid
// points, each a 16 MiB TCP bulk transfer on a fresh Gigabit Testbed
// West instance — the shape of every throughput scenario in the paper.
// It is not registered; the benchmarks run it directly.
func benchSweep() *core.Sweep {
	vals := make([]any, 8)
	for i := range vals {
		vals[i] = i
	}
	return core.NewSweep("bench-sweep", "sharding benchmark sweep",
		[]core.Axis{{Name: "point", Values: vals}},
		func(ctx context.Context, tb *core.Testbed, opts core.Options, pt core.Point) (any, error) {
			return tb.TCPTransfer(core.HostWSJuelich, core.HostWSGMD, 16<<20,
				tcpsim.Config{WindowBytes: 4 << 20})
		},
		func(opts core.Options, results []any) (core.Report, error) {
			rep := &core.Figure1Report{}
			for i, r := range results {
				res := r.(tcpsim.Result)
				rep.Rows = append(rep.Rows, core.Figure1Row{
					Path: fmt.Sprintf("point %d", i), Mbps: res.ThroughputBps / 1e6,
				})
			}
			return rep, nil
		})
}

// runSweep drives the bench sweep at the given shard count and checks
// the merged report kept all 8 points.
func runSweep(b *testing.B, shards int) {
	sw := benchSweep()
	opts := core.NewOptions(core.WithShards(shards))
	rep, err := sw.Run(context.Background(), nil, opts)
	if err != nil {
		b.Fatal(err)
	}
	if sr, ok := rep.(core.ShardedReport); !ok || len(sr.ShardTimings()) == 0 {
		b.Fatal("sweep report lost its shard timings")
	}
}

// SweepSingleKernel is the pre-sharding baseline: the whole 8-point
// sweep evaluated sequentially on one testbed/kernel.
func SweepSingleKernel(b *testing.B) {
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		runSweep(b, 1)
	}
}

// SweepSharded is the same sweep split across GOMAXPROCS shards, each
// owning a fresh kernel/network/testbed. On an N-core machine (N >= 4)
// this should approach N-fold speedup over SweepSingleKernel; the ratio
// of the two rows in BENCH_kernel.json is the tracked number.
func SweepSharded(b *testing.B) {
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		runSweep(b, 0) // 0 = GOMAXPROCS
	}
}

// benchSweepUneven builds an intentionally uneven grid, the shape that
// motivated the work-stealing dispatcher: 16 points where point 0 costs
// ~10x its siblings (the figure1 pattern — its Ethernet-MTU probe
// simulates ~10x longer than the other paths). Contiguous batching
// strands the expensive point in a batch with ordinary ones, so that
// shard finishes long after the rest went idle; work stealing isolates
// it and the idle shards drain the remaining points.
func benchSweepUneven() *core.Sweep {
	vals := make([]any, 16)
	for i := range vals {
		vals[i] = i
	}
	return core.NewSweep("bench-sweep-uneven", "uneven-grid dispatch benchmark sweep",
		[]core.Axis{{Name: "point", Values: vals}},
		func(ctx context.Context, tb *core.Testbed, opts core.Options, pt core.Point) (any, error) {
			nbytes := int64(24 << 20) // the ~10x point
			if pt.Index != 0 {
				nbytes = int64(24<<20) / 10
			}
			return tb.TCPTransfer(core.HostWSJuelich, core.HostWSGMD, nbytes,
				tcpsim.Config{WindowBytes: 4 << 20})
		},
		func(opts core.Options, results []any) (core.Report, error) {
			rep := &core.Figure1Report{}
			for i, r := range results {
				res := r.(tcpsim.Result)
				rep.Rows = append(rep.Rows, core.Figure1Row{
					Path: fmt.Sprintf("point %d", i), Mbps: res.ThroughputBps / 1e6,
				})
			}
			return rep, nil
		})
}

// runUnevenSweep drives the uneven grid on 4 shards with the given
// dispatch policy. Four shards on 16 points is the contended shape:
// every contiguous batch holds 4 points, so the batch containing the
// 10x point costs ~13 units while its siblings cost 4.
func runUnevenSweep(b *testing.B, maker core.DispatcherMaker) {
	sw := benchSweepUneven()
	opts := core.NewOptions(core.WithShards(4), core.WithDispatcher(maker))
	rep, err := sw.Run(context.Background(), nil, opts)
	if err != nil {
		b.Fatal(err)
	}
	if sr, ok := rep.(core.ShardedReport); !ok || len(sr.ShardTimings()) == 0 {
		b.Fatal("sweep report lost its shard timings")
	}
}

// SweepContiguousUneven is the pre-dispatcher baseline on the uneven
// grid: PR 3's static contiguous batches, which leave three shards idle
// while the fourth grinds through the batch holding the 10x point.
func SweepContiguousUneven(b *testing.B) {
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		runUnevenSweep(b, core.NewContiguousDispatcher)
	}
}

// SweepWorkStealing is the same uneven grid under the work-stealing
// dispatcher (the default): the expensive point gets a lease of its
// own and the finished shards steal the rest. The tracked number is
// this row beating SweepContiguousUneven in BENCH_kernel.json.
func SweepWorkStealing(b *testing.B) {
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		runUnevenSweep(b, core.NewWorkStealingDispatcher)
	}
}

// buildPDESSites constructs the large-topology PDES benchmark network:
// `sites` star LANs (one switch, hostsPer hosts on gigabit 10 µs links)
// joined by 2.4 Gbit/s 500 µs WAN links from site 0's switch to every
// other site — the repo's gigabit-testbed shape scaled out until one
// kernel is the bottleneck.
func buildPDESSites(sites, hostsPer int) (*netsim.Network, [][]netsim.NodeID) {
	n := netsim.New(sim.NewKernel())
	hosts := make([][]netsim.NodeID, sites)
	switches := make([]*netsim.Node, sites)
	for s := 0; s < sites; s++ {
		sw := n.AddNode("sw", netsim.WithForwardCost(time.Microsecond, 16e9))
		switches[s] = sw
		for h := 0; h < hostsPer; h++ {
			nd := n.AddNode("host")
			n.Connect(nd, sw, netsim.LinkConfig{Name: "lan", Bps: 1e9, Delay: 10 * time.Microsecond})
			hosts[s] = append(hosts[s], nd.ID)
		}
	}
	for s := 1; s < sites; s++ {
		n.Connect(switches[0], switches[s], netsim.LinkConfig{
			Name: "wan", Bps: 2.4e9, Delay: 500 * time.Microsecond, QueueBytes: 64 << 20,
		})
	}
	n.ComputeRoutes()
	return n, hosts
}

// pdesBounce keeps a cross-site packet chain alive for a fixed hop
// count carried in Seq. Chains run between every pair of ring-adjacent
// sites, so with an even hop count every partition pool's gets and puts
// balance and steady state allocates nothing.
type pdesBounce struct {
	n    *netsim.Network
	hops int64
}

func (h *pdesBounce) HandleDeliver(p *netsim.Packet) {
	if p.Seq >= h.hops {
		return
	}
	r := h.n.NewPacketAt(p.Dst)
	r.Src, r.Dst, r.Bytes, r.Seq = p.Dst, p.Src, p.Bytes, p.Seq+1
	r.Handler = h
	h.n.Send(r)
}

func (h *pdesBounce) HandleDrop(*netsim.Packet) {}

// pdesLargeTopology is the shared body: one synchronized run of 4 sites
// x 8 hosts with a 64-hop cross-site chain per host pair, on the given
// kernel count.
func pdesLargeTopology(b *testing.B, kernels int) {
	const sites, hostsPer, hops = 4, 8, 64
	n, hosts := buildPDESSites(sites, hostsPer)
	if kernels > 1 {
		n.Partition(kernels, 0)
	}
	h := &pdesBounce{n: n, hops: hops}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for s := 0; s < sites; s++ {
			for j, src := range hosts[s] {
				p := n.NewPacketAt(src)
				p.Src, p.Dst, p.Bytes = src, hosts[(s+1)%sites][j], 4096
				p.Handler = h
				n.Send(p)
			}
		}
		n.Run()
	}
}

// PDESLargeTopologySingleKernel is the serial baseline for the
// conservative-PDES work: the large cross-site load on one kernel.
func PDESLargeTopologySingleKernel(b *testing.B) { pdesLargeTopology(b, 1) }

// PDESLargeTopology is the same load partitioned at the WAN cut across
// 4 kernels (one per site, 500 µs lookahead). The tracked number is
// this row vs PDESLargeTopologySingleKernel in BENCH_kernel.json — on a
// >= 4-core machine the ratio is the parallel speedup; on one core it
// bounds the synchronization overhead instead.
func PDESLargeTopology(b *testing.B) { pdesLargeTopology(b, 4) }

// buildPDESSitesUneven is buildPDESSites with unequal WAN latencies:
// the link from site 0 to site s has delay s x 500 µs, so the cut
// graph mixes a short edge with progressively longer ones. Under the
// global window every partition synchronizes at the worst (shortest)
// 500 µs; per-pair horizons give the distant pairs their own, larger
// bounds.
func buildPDESSitesUneven(sites, hostsPer int) (*netsim.Network, [][]netsim.NodeID) {
	n := netsim.New(sim.NewKernel())
	hosts := make([][]netsim.NodeID, sites)
	switches := make([]*netsim.Node, sites)
	for s := 0; s < sites; s++ {
		sw := n.AddNode("sw", netsim.WithForwardCost(time.Microsecond, 16e9))
		switches[s] = sw
		for h := 0; h < hostsPer; h++ {
			nd := n.AddNode("host")
			n.Connect(nd, sw, netsim.LinkConfig{Name: "lan", Bps: 1e9, Delay: 10 * time.Microsecond})
			hosts[s] = append(hosts[s], nd.ID)
		}
	}
	for s := 1; s < sites; s++ {
		n.Connect(switches[0], switches[s], netsim.LinkConfig{
			Name: "wan", Bps: 2.4e9, Delay: time.Duration(s) * 500 * time.Microsecond, QueueBytes: 64 << 20,
		})
	}
	n.ComputeRoutes()
	return n, hosts
}

// pdesPerPair is the shared body for the unequal-latency benchmark:
// the 4-site load of pdesLargeTopology on WAN links of 500 µs, 1 ms
// and 1.5 ms, so the partitioned row exercises per-pair horizons where
// they differ most from the global window.
func pdesPerPair(b *testing.B, kernels int) {
	const sites, hostsPer, hops = 4, 8, 64
	n, hosts := buildPDESSitesUneven(sites, hostsPer)
	if kernels > 1 {
		if eff := n.Partition(kernels, 0); eff != kernels {
			b.Fatalf("Partition(%d) = %d effective kernels", kernels, eff)
		}
	}
	h := &pdesBounce{n: n, hops: hops}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for s := 0; s < sites; s++ {
			for j, src := range hosts[s] {
				p := n.NewPacketAt(src)
				p.Src, p.Dst, p.Bytes = src, hosts[(s+1)%sites][j], 4096
				p.Handler = h
				n.Send(p)
			}
		}
		n.Run()
	}
}

// PDESPerPairLookaheadSingleKernel is the serial baseline for the
// unequal-latency topology.
func PDESPerPairLookaheadSingleKernel(b *testing.B) { pdesPerPair(b, 1) }

// PDESPerPairLookahead partitions the unequal-latency topology across
// 4 kernels. Every cut queue carries its edge's own latency, so the
// group runs per-pair horizons: the 500 µs edge no longer throttles
// the 1.5 ms pairs. Compare against PDESPerPairLookaheadSingleKernel.
func PDESPerPairLookahead(b *testing.B) { pdesPerPair(b, 4) }

// pdesIntra is the shared body for the giant-LAN benchmark: one star
// LAN — the shape that stayed serial before within-component
// partitioning — cut at the switch boundary across the host-switch
// links (10 µs per-pair lookahead).
func pdesIntra(b *testing.B, kernels int) {
	const hostsPer, hops = 32, 64
	n, hosts := buildPDESSites(1, hostsPer)
	if kernels > 1 {
		if eff := n.PartitionOpt(netsim.PartitionOptions{Kernels: kernels, Intra: true}); eff != kernels {
			b.Fatalf("PartitionOpt(%d, Intra) = %d effective kernels", kernels, eff)
		}
	}
	h := &pdesBounce{n: n, hops: hops}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j, src := range hosts[0] {
			p := n.NewPacketAt(src)
			p.Src, p.Dst, p.Bytes = src, hosts[0][(j+1)%hostsPer], 4096
			p.Handler = h
			n.Send(p)
		}
		n.Run()
	}
}

// PDESIntraComponentSingleKernel is the serial baseline for the
// giant-LAN topology.
func PDESIntraComponentSingleKernel(b *testing.B) { pdesIntra(b, 1) }

// PDESIntraComponent runs the giant LAN across 2 kernels via
// intra-component cuts — the topology that could not use >1 kernel at
// all before PR 10. On one core the ratio vs the single-kernel row
// bounds the 10 µs-lookahead synchronization overhead (two kernels keep
// the barrier party small; the overhead grows with the member count).
func PDESIntraComponent(b *testing.B) { pdesIntra(b, 2) }

// NullMessageOverhead isolates the cost of the conservative protocol
// itself: two kernels, all events on one of them spaced exactly one
// lookahead apart, so every synchronization round fires a single event
// and the measured time is pure bound-exchange + barrier traffic
// (ns/op / 512 events ~= cost per null-message round).
func NullMessageOverhead(b *testing.B) {
	const la = 100 * time.Microsecond
	const events = 512
	k0, k1 := sim.NewKernel(), sim.NewKernel()
	g := pdes.NewGroup(la, []*pdes.Member{{K: k0}, {K: k1}})
	noop := func() {}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		start := k0.Now()
		for j := 1; j <= events; j++ {
			k0.At(start.Add(time.Duration(j)*la), noop)
		}
		g.Run()
	}
}

// Spec names one benchmark for the gtwbench harness.
type Spec struct {
	Name string
	Fn   func(*testing.B)
}

// Specs lists every tracked hot-path benchmark in report order.
func Specs() []Spec {
	return []Spec{
		{"BenchmarkEventThroughput", EventThroughput},
		{"BenchmarkEventHeap", EventHeap},
		{"BenchmarkProcContextSwitch", ProcContextSwitch},
		{"BenchmarkChanSendRecv", ChanSendRecv},
		{"BenchmarkPacketDelivery", PacketDelivery},
		{"BenchmarkMultiHopForwarding", MultiHopForwarding},
		{"BenchmarkTCPTransfer", TCPTransfer},
		{"BenchmarkSweepSingleKernel", SweepSingleKernel},
		{"BenchmarkSweepSharded", SweepSharded},
		{"BenchmarkSweepContiguousUneven", SweepContiguousUneven},
		{"BenchmarkSweepWorkStealing", SweepWorkStealing},
		{"BenchmarkPDESLargeTopologySingleKernel", PDESLargeTopologySingleKernel},
		{"BenchmarkPDESLargeTopology", PDESLargeTopology},
		{"BenchmarkPDESPerPairLookaheadSingleKernel", PDESPerPairLookaheadSingleKernel},
		{"BenchmarkPDESPerPairLookahead", PDESPerPairLookahead},
		{"BenchmarkPDESIntraComponentSingleKernel", PDESIntraComponentSingleKernel},
		{"BenchmarkPDESIntraComponent", PDESIntraComponent},
		{"BenchmarkNullMessageOverhead", NullMessageOverhead},
	}
}

// Result is one benchmark measurement in BENCH_kernel.json.
type Result struct {
	Name        string  `json:"name"`
	N           int     `json:"n"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	MBPerSec    float64 `json:"mb_per_sec,omitempty"`
}

// Run executes every Spec under testing.Benchmark and collects the
// results. A benchmark that fails (b.Fatal/b.Error) comes back from
// testing.Benchmark as a zero result; Run reports it as an error
// naming the spec instead of emitting N=0 / NaN rows.
func Run() ([]Result, error) {
	specs := Specs()
	out := make([]Result, 0, len(specs))
	for _, s := range specs {
		r := testing.Benchmark(s.Fn)
		if r.N == 0 {
			return nil, fmt.Errorf("benchkit: %s failed under testing.Benchmark", s.Name)
		}
		res := Result{
			Name:        s.Name,
			N:           r.N,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
		}
		if r.Bytes > 0 && r.T > 0 {
			res.MBPerSec = (float64(r.Bytes) * float64(r.N) / 1e6) / r.T.Seconds()
		}
		out = append(out, res)
	}
	return out, nil
}
