package tenant

import "sync"

// Scheduler is a weighted fair-share arbiter over tenants, in the
// classic virtual-time shape: each tenant accumulates virtual time at
// rate served/weight, and the next grant goes to the eligible tenant
// with the least virtual time. A high-weight tenant's clock advances
// slower per point, so at saturation it receives proportionally more
// service; an idle tenant rejoins at the current floor rather than at
// zero, so it cannot bank unused capacity and then monopolize the
// queue.
//
// Charges happen at lease grant, when points leave the queue. A lease
// that expires gives its unserved points back via Refund — without the
// refund, a tenant whose worker died would stay billed for work that
// was requeued and is about to be billed again, sliding it behind
// lower-priority tenants (the priority inversion pinned by
// TestRefundPreventsPriorityInversion).
type Scheduler struct {
	mu     sync.Mutex
	vt     map[string]float64 // virtual time per tenant
	weight map[string]float64
}

// NewScheduler builds an empty scheduler; tenants join on first use.
func NewScheduler() *Scheduler {
	return &Scheduler{vt: make(map[string]float64), weight: make(map[string]float64)}
}

// SetWeight fixes a tenant's fair-share weight (default 1 if never
// set; weights <= 0 are ignored).
func (s *Scheduler) SetWeight(name string, w float64) {
	if w <= 0 {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.weight[name] = w
}

func (s *Scheduler) weightLocked(name string) float64 {
	if w, ok := s.weight[name]; ok {
		return w
	}
	return 1
}

// ensureLocked admits a tenant at the current virtual-time floor so a
// late joiner competes from "now" instead of replaying the past.
func (s *Scheduler) ensureLocked(name string) {
	if _, ok := s.vt[name]; ok {
		return
	}
	floor := 0.0
	first := true
	for _, v := range s.vt {
		if first || v < floor {
			floor, first = v, false
		}
	}
	s.vt[name] = floor
}

// Charge bills a tenant for points granted to it.
func (s *Scheduler) Charge(name string, points int) {
	if points <= 0 {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.ensureLocked(name)
	s.vt[name] += float64(points) / s.weightLocked(name)
}

// Refund returns the unserved part of an expired or abandoned lease,
// clamped so a tenant's clock never runs below the admission floor of
// zero.
func (s *Scheduler) Refund(name string, points int) {
	if points <= 0 {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.ensureLocked(name)
	s.vt[name] -= float64(points) / s.weightLocked(name)
	if s.vt[name] < 0 {
		s.vt[name] = 0
	}
}

// Pick returns the candidate with the least virtual time, breaking
// ties by candidate order (callers pass submission order, so ties are
// FIFO). Empty candidates return "".
func (s *Scheduler) Pick(candidates []string) string {
	if len(candidates) == 0 {
		return ""
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	best := ""
	bestVT := 0.0
	for _, name := range candidates {
		s.ensureLocked(name)
		if v := s.vt[name]; best == "" || v < bestVT {
			best, bestVT = name, v
		}
	}
	return best
}

// Order returns the candidates sorted by ascending virtual time
// (stable: ties keep candidate order). The lease handler walks this to
// find the first tenant with grantable work.
func (s *Scheduler) Order(candidates []string) []string {
	out := append([]string(nil), candidates...)
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, name := range out {
		s.ensureLocked(name)
	}
	// Insertion sort: candidate lists are tenant-count sized (small),
	// and stability gives FIFO tie-breaks for free.
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && s.vt[out[j]] < s.vt[out[j-1]]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// VT reports a tenant's current virtual time (0 for unknown tenants);
// exposed for tests and status introspection.
func (s *Scheduler) VT(name string) float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.vt[name]
}
