// Package tenant is the coordinator's multi-tenancy layer: token
// authentication, priority classes, per-tenant accounting, and
// weighted fair-share scheduling across tenants.
//
// The paper's gigabit-WAN testbed was a shared facility — climate,
// MEG, video and FSI groups all submitted competing workloads to the
// same infrastructure. This package gives gtwd the same shape of
// shared operation: every request carries a bearer token resolved to a
// Tenant, usage is metered per tenant (points computed fresh vs.
// point-store hits, so repeat tenants are cheap and billed as such),
// and the lease queue serves tenants in weighted-fair order so a
// high-priority sweep does not starve behind a bulk one.
//
// Tenancy is execution metadata only. It never enters point keys or
// report bytes, so the content-addressed point store keeps deduping
// across tenants and reports stay byte-identical regardless of who
// submitted the job.
package tenant

import (
	"encoding/json"
	"fmt"
	"os"
	"strings"
	"sync/atomic"
)

// Class is a scheduling priority class. Classes map to fair-share
// weights: at saturation, a high tenant receives 4× the points of a
// bulk tenant and 2× those of a normal one.
type Class string

// The recognized priority classes.
const (
	High   Class = "high"
	Normal Class = "normal"
	Bulk   Class = "bulk"
)

// Weight returns the fair-share weight of the class (0 for unknown
// classes — Validate rejects those at load time).
func (c Class) Weight() float64 {
	switch c {
	case High:
		return 4
	case Normal, "":
		return 2
	case Bulk:
		return 1
	}
	return 0
}

// Usage is a tenant's accounting block. All fields are atomics: they
// are bumped on hot paths (per point) without locks or allocations.
type Usage struct {
	JobsSubmitted  atomic.Int64 // jobs accepted from this tenant
	PointsRun      atomic.Int64 // points computed fresh for this tenant
	PointsHit      atomic.Int64 // points served from the content-addressed store
	PointsStreamed atomic.Int64 // points uploaded mid-lease by workers
	StoreBytes     atomic.Int64 // bytes this tenant's fresh points added to the store
	StoreRejected  atomic.Int64 // points the store refused under its byte budget
}

// Tenant is one configured principal.
type Tenant struct {
	Name  string `json:"name"`
	Token string `json:"token"`
	Class Class  `json:"class,omitempty"`
	// MaxInFlight caps the number of this tenant's points concurrently
	// leased to workers; 0 means unlimited. It is a soft admission
	// bound checked at grant time, not a hard mid-lease limit.
	MaxInFlight int `json:"max_in_flight,omitempty"`

	Usage Usage `json:"-"`
}

// Weight returns the tenant's fair-share weight.
func (t *Tenant) Weight() float64 { return t.Class.Weight() }

// DefaultTenant builds the anonymous tenant used when a coordinator
// runs without a tenants file: auth is disabled and all usage is
// attributed here.
func DefaultTenant() *Tenant {
	return &Tenant{Name: "default", Class: Normal}
}

// configFile is the -tenants file schema: a JSON object so the format
// can grow fields without breaking old files.
type configFile struct {
	Tenants []*Tenant `json:"tenants"`
}

// Registry resolves tokens to tenants. It is immutable after Load; the
// mutable parts (Usage counters) live inside each Tenant.
type Registry struct {
	list    []*Tenant
	byToken map[string]*Tenant
}

// NewRegistry validates a tenant list and builds the lookup. Names and
// tokens must be non-empty and unique, classes must be known.
func NewRegistry(tenants []*Tenant) (*Registry, error) {
	if len(tenants) == 0 {
		return nil, fmt.Errorf("tenant: no tenants configured")
	}
	r := &Registry{byToken: make(map[string]*Tenant, len(tenants))}
	names := make(map[string]bool, len(tenants))
	for i, t := range tenants {
		if t == nil || t.Name == "" {
			return nil, fmt.Errorf("tenant: entry %d has no name", i)
		}
		if t.Token == "" {
			return nil, fmt.Errorf("tenant: %q has no token", t.Name)
		}
		if t.Class == "" {
			t.Class = Normal
		}
		if t.Class.Weight() <= 0 {
			return nil, fmt.Errorf("tenant: %q has unknown class %q (want high, normal or bulk)", t.Name, t.Class)
		}
		if t.MaxInFlight < 0 {
			return nil, fmt.Errorf("tenant: %q has negative max_in_flight", t.Name)
		}
		if names[t.Name] {
			return nil, fmt.Errorf("tenant: duplicate name %q", t.Name)
		}
		if _, dup := r.byToken[t.Token]; dup {
			return nil, fmt.Errorf("tenant: %q reuses another tenant's token", t.Name)
		}
		names[t.Name] = true
		r.byToken[t.Token] = t
		r.list = append(r.list, t)
	}
	return r, nil
}

// Load reads a -tenants JSON config file.
func Load(path string) (*Registry, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("tenant: %w", err)
	}
	var cfg configFile
	if err := json.Unmarshal(b, &cfg); err != nil {
		return nil, fmt.Errorf("tenant: parsing %s: %w", path, err)
	}
	return NewRegistry(cfg.Tenants)
}

// Tenants returns the configured tenants in file order.
func (r *Registry) Tenants() []*Tenant { return r.list }

// ByName returns the named tenant, or nil.
func (r *Registry) ByName(name string) *Tenant {
	for _, t := range r.list {
		if t.Name == name {
			return t
		}
	}
	return nil
}

// Authenticate resolves an Authorization header value ("Bearer
// <token>", or the bare token for curl convenience) to a tenant.
func (r *Registry) Authenticate(authorization string) (*Tenant, bool) {
	tok := strings.TrimSpace(authorization)
	if rest, ok := strings.CutPrefix(tok, "Bearer "); ok {
		tok = strings.TrimSpace(rest)
	}
	if tok == "" {
		return nil, false
	}
	t, ok := r.byToken[tok]
	return t, ok
}
