package tenant

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestLoadConfig(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "tenants.json")
	cfg := `{"tenants":[
		{"name":"climate","token":"tok-climate","class":"high","max_in_flight":64},
		{"name":"video","token":"tok-video"},
		{"name":"archive","token":"tok-archive","class":"bulk"}
	]}`
	if err := os.WriteFile(path, []byte(cfg), 0o644); err != nil {
		t.Fatal(err)
	}
	r, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Tenants()) != 3 {
		t.Fatalf("got %d tenants, want 3", len(r.Tenants()))
	}
	climate, ok := r.Authenticate("Bearer tok-climate")
	if !ok || climate.Name != "climate" {
		t.Fatalf("Authenticate(bearer) = %v, %v", climate, ok)
	}
	if climate.Weight() != 4 || climate.MaxInFlight != 64 {
		t.Fatalf("climate weight=%v maxInFlight=%d, want 4, 64", climate.Weight(), climate.MaxInFlight)
	}
	video, ok := r.Authenticate("tok-video") // bare token accepted too
	if !ok || video.Name != "video" || video.Class != Normal {
		t.Fatalf("bare-token auth = %v, %v (class %q)", video, ok, video.Class)
	}
	if _, ok := r.Authenticate("Bearer nope"); ok {
		t.Fatal("unknown token authenticated")
	}
	if _, ok := r.Authenticate(""); ok {
		t.Fatal("empty token authenticated")
	}
	if got := r.ByName("archive"); got == nil || got.Weight() != 1 {
		t.Fatalf("ByName(archive) = %v", got)
	}
}

func TestLoadConfigRejectsBadEntries(t *testing.T) {
	cases := []struct {
		name string
		ts   []*Tenant
		want string
	}{
		{"empty", nil, "no tenants"},
		{"noname", []*Tenant{{Token: "t"}}, "no name"},
		{"notoken", []*Tenant{{Name: "a"}}, "no token"},
		{"badclass", []*Tenant{{Name: "a", Token: "t", Class: "urgent"}}, "unknown class"},
		{"dupname", []*Tenant{{Name: "a", Token: "t1"}, {Name: "a", Token: "t2"}}, "duplicate name"},
		{"duptoken", []*Tenant{{Name: "a", Token: "t"}, {Name: "b", Token: "t"}}, "token"},
		{"negcap", []*Tenant{{Name: "a", Token: "t", MaxInFlight: -1}}, "max_in_flight"},
	}
	for _, c := range cases {
		if _, err := NewRegistry(c.ts); err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: err = %v, want substring %q", c.name, err, c.want)
		}
	}
}

func TestSchedulerWeightedShares(t *testing.T) {
	s := NewScheduler()
	s.SetWeight("high", 4)
	s.SetWeight("bulk", 1)
	cands := []string{"high", "bulk"}
	grants := map[string]int{}
	// Simulate saturation: every pick is charged one point.
	for i := 0; i < 500; i++ {
		w := s.Pick(cands)
		grants[w]++
		s.Charge(w, 1)
	}
	ratio := float64(grants["high"]) / float64(grants["bulk"])
	if ratio < 3.5 || ratio > 4.5 {
		t.Fatalf("high/bulk grant ratio = %.2f (grants %v), want ~4", ratio, grants)
	}
}

func TestSchedulerLateJoinerStartsAtFloor(t *testing.T) {
	s := NewScheduler()
	s.SetWeight("old", 1)
	s.SetWeight("new", 1)
	s.Charge("old", 1000)
	// A tenant joining now must not replay the past: it starts at the
	// current floor, so it does not get 1000 free points.
	if vt := s.VT("old"); vt != 1000 {
		t.Fatalf("old vt = %v, want 1000", vt)
	}
	if got := s.Pick([]string{"old", "new"}); got != "old" {
		t.Fatalf("Pick = %q, want old (late joiner ties at the floor; FIFO breaks the tie)", got)
	}
	if vt := s.VT("new"); vt != 1000 {
		t.Fatalf("new vt = %v, want floor 1000", vt)
	}
}

// TestRefundPreventsPriorityInversion is the regression test for lease
// expiry requeues: a high-priority tenant whose lease dies must get
// its unserved charge back, or the requeued work would wait behind
// lower-priority tenants and be double-billed when re-leased.
func TestRefundPreventsPriorityInversion(t *testing.T) {
	s := NewScheduler()
	s.SetWeight("high", 4)
	s.SetWeight("bulk", 1)
	s.Charge("high", 8) // lease of 8 points granted: vt 2
	s.Charge("bulk", 2) // vt 2 — tied with high
	// The high tenant's lease expires with nothing streamed; the
	// coordinator requeues all 8 points and refunds the charge.
	s.Refund("high", 8)
	if vt := s.VT("high"); vt != 0 {
		t.Fatalf("high vt after refund = %v, want 0", vt)
	}
	if got := s.Pick([]string{"bulk", "high"}); got != "high" {
		t.Fatalf("Pick after expiry refund = %q, want high (inversion!)", got)
	}
	// Without the refund the requeued points would be charged twice;
	// with it, re-granting the same lease lands vt exactly where one
	// grant would have.
	s.Charge("high", 8)
	if vt := s.VT("high"); vt != 2 {
		t.Fatalf("high vt after re-grant = %v, want 2 (single charge)", vt)
	}
}

func TestSchedulerOrderStableTies(t *testing.T) {
	s := NewScheduler()
	s.SetWeight("a", 1)
	s.SetWeight("b", 1)
	s.SetWeight("c", 2)
	s.Pick([]string{"a", "b", "c"}) // admit everyone at floor 0
	s.Charge("a", 3)
	s.Charge("b", 3)
	s.Charge("c", 2)
	got := s.Order([]string{"a", "b", "c"})
	// c has vt 1; a and b tie at 3 and keep submission order.
	want := []string{"c", "a", "b"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Order = %v, want %v", got, want)
		}
	}
}

func TestRefundClampsAtZero(t *testing.T) {
	s := NewScheduler()
	s.SetWeight("a", 1)
	s.Charge("a", 2)
	s.Refund("a", 10)
	if vt := s.VT("a"); vt != 0 {
		t.Fatalf("vt = %v, want clamp at 0", vt)
	}
}
