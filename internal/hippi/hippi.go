// Package hippi models the High Performance Parallel Interface
// (HiPPI-800, ANSI X3.183) channels that attached the Cray and SP2
// supercomputers to the Gigabit Testbed West, and the workstation-based
// HiPPI-ATM IP gateways described in section 2 of the paper.
//
// HiPPI moves data in bursts of 256 32-bit words (1 KiB). A packet is a
// sequence of bursts; connection setup, the first short burst and
// per-burst gaps cost cycles, so small transfers see much less than the
// 800 Mbit/s signalling rate while transfers of 1 MByte or more approach
// it — the behaviour the paper reports ("peak performance of 800 Mbit/s
// when a low-level protocol and large transfer blocks (1 MByte or more)
// are used").
package hippi

import "time"

const (
	// SignallingRate is the HiPPI-800 data rate in bit/s
	// (32 bits x 25 MHz).
	SignallingRate = 800e6

	// BurstBytes is the payload of a full HiPPI burst:
	// 256 words x 4 bytes.
	BurstBytes = 1024

	// burstOverheadWords is the per-burst framing cost in word
	// times (LLRC + READY exchange), expressed in 32-bit words.
	burstOverheadWords = 4

	// connectionOverhead is the connection setup + I-field exchange
	// cost per HiPPI packet.
	connectionOverhead = 2 * time.Microsecond
)

// wordTime is the duration of one 32-bit word on the channel.
const wordTime = time.Second * 4 * 8 / SignallingRate // 40 ns

// Bursts reports the number of bursts needed for an n-byte packet.
func Bursts(n int) int {
	if n <= 0 {
		return 0
	}
	return (n + BurstBytes - 1) / BurstBytes
}

// TransferTime reports the channel occupancy for one n-byte HiPPI
// packet, including connection setup and per-burst overhead.
func TransferTime(n int) time.Duration {
	if n <= 0 {
		return 0
	}
	words := (n + 3) / 4
	overhead := Bursts(n) * burstOverheadWords
	return connectionOverhead + time.Duration(words+overhead)*wordTime
}

// Throughput reports the effective data rate in bit/s for packets of n
// bytes sent back to back.
func Throughput(n int) float64 {
	d := TransferTime(n)
	if d <= 0 {
		return 0
	}
	return float64(n) * 8 / d.Seconds()
}

// Efficiency reports Throughput(n)/SignallingRate.
func Efficiency(n int) float64 { return Throughput(n) / SignallingRate }

// Gateway describes a workstation acting as an IP gateway between a
// HiPPI channel and an ATM interface — the SGI O200 and Sun Ultra 30 in
// Jülich and the Sun E5000 in Sankt Augustin. Packets are
// store-and-forwarded: each one costs fixed per-packet CPU work plus a
// pass through the workstation's memory system.
type Gateway struct {
	// Name identifies the gateway host.
	Name string
	// PerPacket is the fixed IP forwarding cost per packet.
	PerPacket time.Duration
	// CopyBps is the memory-copy bandwidth of the workstation in
	// bit/s; each forwarded byte crosses the bus once.
	CopyBps float64
}

// DefaultGateway returns parameters representative of the 1999
// workstations (O200/Ultra 30 class): ~50 us of per-packet protocol
// work and ~2.6 Gbit/s of copy bandwidth. With a 64 KByte MTU these
// costs keep TCP/IP on the HiPPI path in the 430-540 Mbit/s range the
// paper reports, while a 1500-byte MTU collapses to tens of Mbit/s.
func DefaultGateway(name string) Gateway {
	return Gateway{Name: name, PerPacket: 50 * time.Microsecond, CopyBps: 2.6e9}
}

// ForwardTime reports the gateway residence time of an n-byte packet.
// A gateway with CopyBps <= 0 charges only the per-packet cost.
func (g Gateway) ForwardTime(n int) time.Duration {
	if n < 0 {
		n = 0
	}
	var copyT time.Duration
	if g.CopyBps > 0 {
		copyT = time.Duration(float64(n) * 8 / g.CopyBps * 1e9)
	}
	return g.PerPacket + copyT
}

// MaxForwardBps reports the forwarding rate limit in bit/s that the
// gateway imposes for packets of n bytes.
func (g Gateway) MaxForwardBps(n int) float64 {
	d := g.ForwardTime(n)
	if d <= 0 {
		return 0
	}
	return float64(n) * 8 / d.Seconds()
}
