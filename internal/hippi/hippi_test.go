package hippi

import (
	"testing"
	"testing/quick"
)

func TestBursts(t *testing.T) {
	cases := []struct{ n, want int }{
		{0, 0}, {1, 1}, {1024, 1}, {1025, 2}, {1 << 20, 1024},
	}
	for _, c := range cases {
		if got := Bursts(c.n); got != c.want {
			t.Errorf("Bursts(%d) = %d, want %d", c.n, got, c.want)
		}
	}
}

func TestPeakApproaches800(t *testing.T) {
	// The paper: 800 Mbit/s peak with >= 1 MByte blocks.
	if e := Efficiency(1 << 20); e < 0.95 {
		t.Errorf("1 MByte efficiency = %.3f, want >= 0.95", e)
	}
	if e := Efficiency(16 << 20); e < 0.98 {
		t.Errorf("16 MByte efficiency = %.3f, want >= 0.98", e)
	}
	// Small transfers are dominated by setup.
	if e := Efficiency(64); e > 0.3 {
		t.Errorf("64-byte efficiency = %.3f, want far below peak", e)
	}
	// Never exceeds the signalling rate.
	if tp := Throughput(64 << 20); tp > SignallingRate {
		t.Errorf("throughput %.0f exceeds signalling rate", tp)
	}
}

func TestTransferTimeMonotone(t *testing.T) {
	f := func(a, b uint16) bool {
		x, y := int(a), int(b)
		if x > y {
			x, y = y, x
		}
		return TransferTime(x) <= TransferTime(y)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestZeroAndNegative(t *testing.T) {
	if TransferTime(0) != 0 || TransferTime(-5) != 0 {
		t.Error("zero/negative sizes should cost nothing")
	}
	if Throughput(0) != 0 {
		t.Error("Throughput(0) != 0")
	}
}

func TestGatewayForwarding(t *testing.T) {
	g := DefaultGateway("sgi-o200")
	if g.Name != "sgi-o200" {
		t.Errorf("name = %q", g.Name)
	}
	// 64 KByte packets: gateway must sustain well over 430 Mbit/s so
	// that the end-to-end TCP path (which also pays ATM framing and
	// host costs) lands in the measured range.
	bps := g.MaxForwardBps(65536)
	if bps < 450e6 {
		t.Errorf("gateway 64K forwarding = %.0f Mbit/s, want >= 450", bps/1e6)
	}
	// 1500-byte packets: per-packet cost dominates; the paper's
	// motivation for the 64 KByte MTU.
	small := g.MaxForwardBps(1500)
	if small > 250e6 {
		t.Errorf("gateway 1500B forwarding = %.0f Mbit/s, should collapse", small/1e6)
	}
	if small >= bps {
		t.Error("small-packet forwarding should be slower than large-packet")
	}
	if g.ForwardTime(-1) != g.PerPacket {
		t.Error("negative size should cost only the per-packet overhead")
	}
	if (Gateway{}).MaxForwardBps(1000) != 0 {
		t.Error("zero gateway should forward at 0")
	}
}
