package viz

import (
	"bytes"
	"image/png"
	"math"
	"testing"

	"repro/internal/atm"
	"repro/internal/volume"
)

func testVolumes() (*volume.Volume, *volume.Volume) {
	anat := volume.New(16, 16, 8)
	corr := volume.New(16, 16, 8)
	for z := 0; z < 8; z++ {
		for y := 0; y < 16; y++ {
			for x := 0; x < 16; x++ {
				anat.Set(x, y, z, float32(100+10*x))
			}
		}
	}
	corr.Set(8, 8, 4, 0.9)
	corr.Set(9, 8, 4, -0.85)
	corr.Set(2, 2, 4, 0.3) // below clip
	return anat, corr
}

func TestRenderOverlayColorsActivation(t *testing.T) {
	anat, corr := testVolumes()
	img, err := RenderOverlay(anat, corr, 4, 0.7)
	if err != nil {
		t.Fatal(err)
	}
	// Activated positive voxel: warm color (red channel saturated).
	c := img.RGBAAt(8, 8)
	if c.R != 255 || c.B != 0 {
		t.Errorf("positive activation color = %+v", c)
	}
	// Negative: cold color.
	c = img.RGBAAt(9, 8)
	if c.B != 255 || c.R != 0 {
		t.Errorf("negative activation color = %+v", c)
	}
	// Sub-clip voxel stays gray (R==G==B).
	c = img.RGBAAt(2, 2)
	if c.R != c.G || c.G != c.B {
		t.Errorf("sub-clip voxel colored: %+v", c)
	}
}

func TestRenderOverlayValidation(t *testing.T) {
	anat, corr := testVolumes()
	if _, err := RenderOverlay(anat, volume.New(4, 4, 4), 0, 0.5); err == nil {
		t.Error("shape mismatch accepted")
	}
	if _, err := RenderOverlay(anat, corr, 99, 0.5); err == nil {
		t.Error("bad slice accepted")
	}
}

func TestWritePNGProducesDecodableImage(t *testing.T) {
	anat, corr := testVolumes()
	img, err := RenderOverlay(anat, corr, 4, 0.7)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WritePNG(&buf, img); err != nil {
		t.Fatal(err)
	}
	decoded, err := png.Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if decoded.Bounds().Dx() != 16 {
		t.Error("decoded size wrong")
	}
}

func TestMergeFunctionalUpsamples(t *testing.T) {
	corr := volume.New(8, 8, 4)
	corr.Set(4, 4, 2, 1.0)
	anatHi := volume.New(32, 32, 16)
	up := MergeFunctional(anatHi, corr)
	if !up.SameShape(anatHi) {
		t.Fatal("merged shape mismatch")
	}
	// The peak should appear near the corresponding upsampled
	// location (4/7 of the way -> ~x=17-18).
	peakX := int(math.Round(4.0 / 7.0 * 31))
	peakZ := int(math.Round(2.0 / 3.0 * 15))
	if up.At(peakX, peakX, peakZ) < 0.5 {
		t.Errorf("upsampled peak value %v at (%d,%d,%d)", up.At(peakX, peakX, peakZ), peakX, peakX, peakZ)
	}
	// Far corner untouched.
	if up.At(0, 0, 0) != 0 {
		t.Error("far corner should be 0")
	}
}

func TestRenderMIPHighlightsActivation(t *testing.T) {
	anat, corr := testVolumes()
	hi := MergeFunctional(anat, corr) // same shape here
	img, err := RenderMIP(anat, hi, 0.7)
	if err != nil {
		t.Fatal(err)
	}
	c := img.RGBAAt(8, 8)
	if c.R != 255 {
		t.Errorf("activated column not highlighted: %+v", c)
	}
	c = img.RGBAAt(0, 0)
	if c.R != c.G || c.G != c.B {
		t.Errorf("inactive column colored: %+v", c)
	}
	if _, err := RenderMIP(anat, volume.New(2, 2, 2), 0.5); err == nil {
		t.Error("shape mismatch accepted")
	}
}

func TestWorkbenchArithmetic(t *testing.T) {
	// 2 planes x stereo x 1024x768 x 24 bit = 9.4 MByte per frame.
	if WorkbenchFrameBytes != 2*2*1024*768*3 {
		t.Errorf("WorkbenchFrameBytes = %d", WorkbenchFrameBytes)
	}
	// The headline claim: fewer than 8 frames/s over 622 Mbit/s ATM
	// with classical IP.
	fps := WorkbenchFPS(atm.OC12.PayloadRate(), atm.DefaultCLIPMTU)
	if fps >= 8 {
		t.Errorf("OC-12 classical-IP workbench rate = %.2f fps, paper says < 8", fps)
	}
	if fps < 6 {
		t.Errorf("OC-12 rate = %.2f fps, implausibly low", fps)
	}
	// OC-48 would lift it fourfold.
	fps48 := WorkbenchFPS(atm.OC48.PayloadRate(), atm.DefaultCLIPMTU)
	if fps48 < 3.9*fps || fps48 > 4.1*fps {
		t.Errorf("OC-48/OC-12 ratio = %.2f, want ~4", fps48/fps)
	}
	// Degenerate MTU.
	if WorkbenchFPS(atm.OC12.PayloadRate(), 40) != 0 {
		t.Error("degenerate MTU should yield 0")
	}
	// A larger MTU improves the rate (less header tax).
	if WorkbenchFPS(atm.OC12.PayloadRate(), atm.MaxCLIPMTU) <= fps {
		t.Error("64K MTU should beat the default CLIP MTU")
	}
}
