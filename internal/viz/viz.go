// Package viz reimplements the visualization stages of the fMRI
// project: the 2-D overlay display of the FIRE GUI (figure 3), the
// merge of the functional data with the high-resolution anatomical
// head scan for 3-D display (figure 4), a maximum-intensity-projection
// renderer standing in for AVS/AVOCADO, and the Responsive Workbench
// frame-streaming arithmetic that section 4 quotes ("less than 8
// frames/second over a 622 Mbit/s ATM network using classical IP").
package viz

import (
	"fmt"
	"image"
	"image/color"
	"image/png"
	"io"
	"math"

	"repro/internal/atm"
	"repro/internal/volume"
)

// RenderOverlay produces the FIRE GUI's 2-D display for slice z:
// grayscale anatomy with voxels whose |correlation| >= clip overlaid in
// color (warm colors for positive, cold for negative correlation).
func RenderOverlay(anat, corr *volume.Volume, z int, clip float64) (*image.RGBA, error) {
	if !anat.SameShape(corr) {
		return nil, fmt.Errorf("viz: anatomy %dx%dx%d and correlation %dx%dx%d differ",
			anat.NX, anat.NY, anat.NZ, corr.NX, corr.NY, corr.NZ)
	}
	if z < 0 || z >= anat.NZ {
		return nil, fmt.Errorf("viz: slice %d out of range [0,%d)", z, anat.NZ)
	}
	min, max := anat.MinMax()
	scale := 1.0
	if max > min {
		scale = 255 / float64(max-min)
	}
	img := image.NewRGBA(image.Rect(0, 0, anat.NX, anat.NY))
	for y := 0; y < anat.NY; y++ {
		for x := 0; x < anat.NX; x++ {
			g := uint8(float64(anat.At(x, y, z)-min) * scale)
			c := color.RGBA{g, g, g, 255}
			r := float64(corr.At(x, y, z))
			if math.Abs(r) >= clip {
				// Color code the coefficient: clip..1 maps to
				// red..yellow, negative to blue..cyan.
				t := (math.Abs(r) - clip) / math.Max(1e-9, 1-clip)
				if t > 1 {
					t = 1
				}
				if r > 0 {
					c = color.RGBA{255, uint8(80 + 175*t), 0, 255}
				} else {
					c = color.RGBA{0, uint8(80 + 175*t), 255, 255}
				}
			}
			img.SetRGBA(x, y, c)
		}
	}
	return img, nil
}

// WritePNG encodes an image as PNG.
func WritePNG(w io.Writer, img image.Image) error { return png.Encode(w, img) }

// MergeFunctional upsamples the functional correlation map onto the
// high-resolution anatomical grid (trilinear), as done before display
// on the Onyx 2: "it is merged with a high resolution (256x256x128
// voxels) image of the subject's head". It returns the upsampled map.
func MergeFunctional(anatHi, corr *volume.Volume) *volume.Volume {
	out := volume.New(anatHi.NX, anatHi.NY, anatHi.NZ)
	sx := float64(corr.NX-1) / float64(anatHi.NX-1)
	sy := float64(corr.NY-1) / float64(anatHi.NY-1)
	sz := float64(corr.NZ-1) / float64(anatHi.NZ-1)
	for z := 0; z < anatHi.NZ; z++ {
		for y := 0; y < anatHi.NY; y++ {
			for x := 0; x < anatHi.NX; x++ {
				out.Set(x, y, z, corr.Trilinear(float64(x)*sx, float64(y)*sy, float64(z)*sz))
			}
		}
	}
	return out
}

// RenderMIP produces a maximum-intensity projection of the anatomy
// along z with activated regions (upsampled correlation >= clip)
// highlighted — the figure-4 style "light areas are regions of the
// brain that are activated" rendering.
func RenderMIP(anatHi, funcHi *volume.Volume, clip float64) (*image.RGBA, error) {
	if !anatHi.SameShape(funcHi) {
		return nil, fmt.Errorf("viz: merged volumes differ in shape")
	}
	min, max := anatHi.MinMax()
	scale := 1.0
	if max > min {
		scale = 200 / float64(max-min)
	}
	img := image.NewRGBA(image.Rect(0, 0, anatHi.NX, anatHi.NY))
	for y := 0; y < anatHi.NY; y++ {
		for x := 0; x < anatHi.NX; x++ {
			var peak float32
			active := false
			for z := 0; z < anatHi.NZ; z++ {
				if v := anatHi.At(x, y, z); v > peak {
					peak = v
				}
				if float64(funcHi.At(x, y, z)) >= clip {
					active = true
				}
			}
			g := uint8(float64(peak-min) * scale)
			if active {
				img.SetRGBA(x, y, color.RGBA{255, uint8(200), uint8(g / 2), 255})
			} else {
				img.SetRGBA(x, y, color.RGBA{g, g, g, 255})
			}
		}
	}
	return img, nil
}

// Workbench frame arithmetic (section 4): "the workbench has two
// projection planes, each of them displays stereo images of 1024x768
// true color (24 Bit) pixels".
const (
	WorkbenchPlanes = 2
	WorkbenchEyes   = 2
	WorkbenchWidth  = 1024
	WorkbenchHeight = 768
	WorkbenchDepth  = 3 // bytes per pixel
)

// WorkbenchFrameBytes is the payload of one full workbench frame set.
const WorkbenchFrameBytes = WorkbenchPlanes * WorkbenchEyes * WorkbenchWidth * WorkbenchHeight * WorkbenchDepth

// WorkbenchFPS reports the achievable workbench frame rate when frames
// are streamed as classical IP over ATM on a carrier of the given
// payload rate (bit/s) with the given IP MTU: framing (LLC/SNAP + AAL5
// cell tax) and per-packet IP headers are charged.
func WorkbenchFPS(payloadBps float64, mtu int) float64 {
	if mtu <= 40 {
		return 0
	}
	ipPayload := mtu - 40 // TCP/IP headers per packet
	wire := atm.CLIPWireBytes(mtu)
	effective := payloadBps * float64(ipPayload) / float64(wire)
	return effective / (8 * float64(WorkbenchFrameBytes))
}
