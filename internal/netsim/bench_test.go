package netsim_test

import (
	"testing"

	"repro/internal/benchkit"
)

// The benchmark bodies live in internal/benchkit so cmd/gtwbench can
// run the identical code with testing.Benchmark and emit
// BENCH_kernel.json; these wrappers keep them discoverable under
// `go test -bench`.

// BenchmarkPacketDelivery measures end-to-end packet cost over one
// link (send, serialize, propagate, deliver).
func BenchmarkPacketDelivery(b *testing.B) { benchkit.PacketDelivery(b) }

// BenchmarkMultiHopForwarding measures a 4-hop store-and-forward path.
func BenchmarkMultiHopForwarding(b *testing.B) { benchkit.MultiHopForwarding(b) }
