package netsim

import (
	"testing"
	"time"

	"repro/internal/sim"
)

// BenchmarkPacketDelivery measures end-to-end packet cost over one
// link (send, serialize, propagate, deliver).
func BenchmarkPacketDelivery(b *testing.B) {
	n, a, dst := twoHosts(LinkConfig{Bps: 1e12, Delay: time.Microsecond, MTU: 65536, QueueBytes: 1 << 40})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n.Send(&Packet{Src: a.ID, Dst: dst.ID, Bytes: 1000})
		n.K.Run()
	}
}

// BenchmarkMultiHopForwarding measures a 4-hop store-and-forward path.
func BenchmarkMultiHopForwarding(b *testing.B) {
	k := sim.NewKernel()
	n := New(k)
	nodes := make([]*Node, 5)
	for i := range nodes {
		nodes[i] = n.AddNode("n", WithForwardCost(time.Microsecond, 1e12))
	}
	for i := 0; i < 4; i++ {
		n.Connect(nodes[i], nodes[i+1], LinkConfig{Bps: 1e12, Delay: time.Microsecond, MTU: 65536})
	}
	n.ComputeRoutes()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n.Send(&Packet{Src: nodes[0].ID, Dst: nodes[4].ID, Bytes: 1000})
		n.K.Run()
	}
}
