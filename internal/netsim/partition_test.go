package netsim

import (
	"testing"
	"time"

	"repro/internal/sim"
)

// buildSites constructs a multi-site topology: `sites` star LANs (one
// switch, hostsPer hosts on 1 Gbit/s 10 µs links) joined by 2.4 Gbit/s
// 500 µs WAN links from site 0's switch to every other site's switch.
// It returns the network and the host IDs per site.
func buildSites(k *sim.Kernel, sites, hostsPer int) (*Network, [][]NodeID) {
	n := New(k)
	hosts := make([][]NodeID, sites)
	switches := make([]*Node, sites)
	for s := 0; s < sites; s++ {
		sw := n.AddNode("sw", WithForwardCost(time.Microsecond, 16e9))
		switches[s] = sw
		for h := 0; h < hostsPer; h++ {
			nd := n.AddNode("host")
			n.Connect(nd, sw, LinkConfig{Name: "lan", Bps: 1e9, Delay: 10 * time.Microsecond})
			hosts[s] = append(hosts[s], nd.ID)
		}
	}
	for s := 1; s < sites; s++ {
		n.Connect(switches[0], switches[s], LinkConfig{
			Name: "wan", Bps: 2.4e9, Delay: 500 * time.Microsecond, QueueBytes: 64 << 20,
		})
	}
	n.ComputeRoutes()
	return n, hosts
}

// crossLoad floods packets between every pair of opposite-site hosts
// and returns the flood results plus final clock — the fingerprint the
// partitioned runs must reproduce bit for bit.
func crossLoad(n *Network, hosts [][]NodeID) ([]FloodResult, sim.Time) {
	var out []FloodResult
	sites := len(hosts)
	for s := 0; s < sites; s++ {
		for h, src := range hosts[s] {
			dst := hosts[(s+1)%sites][h]
			out = append(out, Flood(n, src, dst, 4096, 50))
		}
	}
	return out, n.Now()
}

func TestPartitionByteIdenticalFloods(t *testing.T) {
	const sites, hostsPer = 4, 3
	base, hosts := buildSites(sim.NewKernel(), sites, hostsPer)
	want, wantNow := crossLoad(base, hosts)

	for _, kernels := range []int{2, 4, 8} {
		n, hosts := buildSites(sim.NewKernel(), sites, hostsPer)
		eff := n.Partition(kernels, 0)
		if kernels <= sites && eff != kernels {
			t.Fatalf("Partition(%d) = %d effective kernels", kernels, eff)
		}
		if eff > sites {
			t.Fatalf("Partition(%d) = %d, more than %d sites", kernels, eff, sites)
		}
		got, gotNow := crossLoad(n, hosts)
		if gotNow != wantNow {
			t.Fatalf("kernels=%d: final clock %v, want %v", kernels, gotNow, wantNow)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("kernels=%d flood %d: %+v != %+v", kernels, i, got[i], want[i])
			}
		}
		if st := n.SyncStats(); st.Rounds == 0 || st.NullMessages == 0 {
			t.Fatalf("kernels=%d: no synchronization recorded: %+v", kernels, st)
		}
	}
}

func TestPartitionLookaheadIsMinCutDelay(t *testing.T) {
	n, _ := buildSites(sim.NewKernel(), 2, 1)
	if n.Lookahead() != 0 {
		t.Fatal("lookahead before Partition")
	}
	if eff := n.Partition(2, 0); eff != 2 {
		t.Fatalf("effective kernels = %d", eff)
	}
	if la := n.Lookahead(); la != 500*time.Microsecond {
		t.Fatalf("lookahead = %v, want 500µs", la)
	}
}

func TestPartitionSingleComponentStaysSerial(t *testing.T) {
	k := sim.NewKernel()
	n := New(k)
	a, b := n.AddNode("a"), n.AddNode("b")
	n.Connect(a, b, LinkConfig{Bps: 1e9, Delay: 10 * time.Microsecond})
	n.ComputeRoutes()
	if eff := n.Partition(4, 0); eff != 1 {
		t.Fatalf("LAN-only network split into %d", eff)
	}
	if n.Kernels() != 1 || n.KernelOf(a.ID) != k {
		t.Fatal("single-component network was rebound")
	}
}

func TestPartitionGuards(t *testing.T) {
	expectPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: no panic", name)
			}
		}()
		f()
	}

	n, _ := buildSites(sim.NewKernel(), 2, 1)
	n.Partition(2, 0)
	expectPanic("double partition", func() { n.Partition(2, 0) })
	expectPanic("connect after partition", func() {
		n.Connect(n.Node(0), n.Node(1), LinkConfig{Bps: 1e9})
	})

	n2, hosts2 := buildSites(sim.NewKernel(), 2, 1)
	n2.Send(&Packet{Src: hosts2[0][0], Dst: hosts2[1][0], Bytes: 100})
	expectPanic("partition with scheduled events", func() { n2.Partition(2, 0) })
}

// pingHandler bounces a pooled packet between two hosts, the hop count
// riding in Seq. Chains from opposite sites mirror each other, so every
// partition pool's gets and puts balance exactly each round.
type pingHandler struct {
	n    *Network
	hops int64
}

func (h *pingHandler) HandleDeliver(p *Packet) {
	if p.Seq >= h.hops {
		return
	}
	r := h.n.NewPacketAt(p.Dst)
	r.Src, r.Dst, r.Bytes, r.Seq = p.Dst, p.Src, p.Bytes, p.Seq+1
	r.Handler = h
	h.n.Send(r)
}

func (h *pingHandler) HandleDrop(*Packet) {}

// TestPartitionedRunZeroAlloc pins the hot-path allocation contract
// across partitions: after one warmup run (event pools, packet pools,
// queue buffers and worker goroutines all settle), repeated synchronized
// runs allocate nothing.
func TestPartitionedRunZeroAlloc(t *testing.T) {
	n, hosts := buildSites(sim.NewKernel(), 2, 2)
	if eff := n.Partition(2, 0); eff != 2 {
		t.Fatalf("effective kernels = %d", eff)
	}
	h := &pingHandler{n: n, hops: 100}
	round := func() {
		// Mirrored bidirectional chains: every packet a site-0 chain
		// retires in site 1's pool is matched by a site-1 chain retiring
		// one in site 0's, so neither partition pool drains.
		for i := 0; i < 2; i++ {
			p := n.NewPacketAt(hosts[0][i])
			p.Src, p.Dst, p.Bytes = hosts[0][i], hosts[1][i], 1024
			p.Handler = h
			n.Send(p)
			q := n.NewPacketAt(hosts[1][i])
			q.Src, q.Dst, q.Bytes = hosts[1][i], hosts[0][i], 1024
			q.Handler = h
			n.Send(q)
		}
		n.Run()
	}
	round() // warmup
	if allocs := testing.AllocsPerRun(5, round); allocs > 0 {
		t.Fatalf("partitioned steady-state run allocated %.1f/op, want 0", allocs)
	}
}

// TestIntraPartitionByteIdentical pins the within-component cut: a
// single star LAN has no WAN link to cut, but with Intra every
// host-switch link (positive delay, relay endpoint) is a candidate, so
// the one component still splits — and the floods must stay
// bit-identical to the serial run.
func TestIntraPartitionByteIdentical(t *testing.T) {
	const hostsPer = 4
	load := func(n *Network, hosts [][]NodeID) ([]FloodResult, sim.Time) {
		var out []FloodResult
		for i, src := range hosts[0] {
			dst := hosts[0][(i+1)%len(hosts[0])]
			out = append(out, Flood(n, src, dst, 4096, 50))
		}
		return out, n.Now()
	}

	base, hosts := buildSites(sim.NewKernel(), 1, hostsPer)
	want, wantNow := load(base, hosts)

	for _, kernels := range []int{2, 4} {
		n, hosts := buildSites(sim.NewKernel(), 1, hostsPer)
		eff := n.PartitionOpt(PartitionOptions{Kernels: kernels, Intra: true})
		if eff != kernels {
			t.Fatalf("intra PartitionOpt(%d) = %d effective kernels", kernels, eff)
		}
		if la := n.Lookahead(); la != 10*time.Microsecond {
			t.Fatalf("intra lookahead = %v, want the 10µs LAN delay", la)
		}
		got, gotNow := load(n, hosts)
		if gotNow != wantNow {
			t.Fatalf("kernels=%d: final clock %v, want %v", kernels, gotNow, wantNow)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("kernels=%d flood %d: %+v != %+v", kernels, i, got[i], want[i])
			}
		}
		if st := n.SyncStats(); !st.PerPair {
			t.Fatalf("kernels=%d: intra cut should run per-pair horizons: %+v", kernels, st)
		}
	}
}

// TestIntraMixedCutByteIdentical exercises the WAN-first + intra
// refinement path: two sites give only two WAN islands, so asking for
// four kernels forces intra cuts inside the components. Per-pair
// horizons must then mix the 500 µs WAN latency with the 10 µs LAN
// latencies, and results stay bit-identical.
func TestIntraMixedCutByteIdentical(t *testing.T) {
	const sites, hostsPer = 2, 3
	base, hosts := buildSites(sim.NewKernel(), sites, hostsPer)
	want, wantNow := crossLoad(base, hosts)

	n, hosts := buildSites(sim.NewKernel(), sites, hostsPer)
	eff := n.PartitionOpt(PartitionOptions{Kernels: 4, Intra: true})
	if eff != 4 {
		t.Fatalf("intra PartitionOpt(4) = %d effective kernels", eff)
	}
	if la := n.Lookahead(); la != 10*time.Microsecond {
		t.Fatalf("mixed-cut lookahead = %v, want the 10µs LAN floor", la)
	}
	got, gotNow := crossLoad(n, hosts)
	if gotNow != wantNow {
		t.Fatalf("final clock %v, want %v", gotNow, wantNow)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("flood %d: %+v != %+v", i, got[i], want[i])
		}
	}
}

// TestRebalance pins the between-runs reassignment: after a skewed
// first run the per-node work counters are populated, Rebalance rebuilds
// the assignment from them without changing the kernel count, and the
// second run still matches a serial network that saw the same two-run
// history.
func TestRebalance(t *testing.T) {
	const sites, hostsPer = 4, 3
	base, bHosts := buildSites(sim.NewKernel(), sites, hostsPer)
	want1, _ := crossLoad(base, bHosts)
	want2, wantNow := crossLoad(base, bHosts)

	n, hosts := buildSites(sim.NewKernel(), sites, hostsPer)
	if eff := n.Partition(2, 0); eff != 2 {
		t.Fatalf("effective kernels = %d", eff)
	}
	got1, _ := crossLoad(n, hosts)
	for i := range want1 {
		if got1[i] != want1[i] {
			t.Fatalf("pre-rebalance flood %d: %+v != %+v", i, got1[i], want1[i])
		}
	}
	worked := false
	for _, id := range hosts[0] {
		if n.Node(id).Work() > 0 {
			worked = true
		}
	}
	if !worked {
		t.Fatal("no work recorded on site-0 hosts after a cross-site flood")
	}

	n.Rebalance()
	if n.Kernels() != 2 {
		t.Fatalf("Rebalance changed kernel count to %d", n.Kernels())
	}
	got2, gotNow := crossLoad(n, hosts)
	if gotNow != wantNow {
		t.Fatalf("post-rebalance clock %v, want %v", gotNow, wantNow)
	}
	for i := range want2 {
		if got2[i] != want2[i] {
			t.Fatalf("post-rebalance flood %d: %+v != %+v", i, got2[i], want2[i])
		}
	}
}

func TestRebalanceGuards(t *testing.T) {
	expectPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: no panic", name)
			}
		}()
		f()
	}
	n, _ := buildSites(sim.NewKernel(), 2, 1)
	expectPanic("rebalance before partition", func() { n.Rebalance() })

	n2, hosts2 := buildSites(sim.NewKernel(), 2, 1)
	n2.Partition(2, 0)
	n2.Send(&Packet{Src: hosts2[0][0], Dst: hosts2[1][0], Bytes: 100})
	expectPanic("rebalance with scheduled events", func() { n2.Rebalance() })
}

// TestIntraPartitionedRunZeroAlloc extends the hot-path allocation
// contract to intra-component cuts: per-pair horizons and the extra cut
// queues must not introduce steady-state allocation.
func TestIntraPartitionedRunZeroAlloc(t *testing.T) {
	n, hosts := buildSites(sim.NewKernel(), 1, 2)
	if eff := n.PartitionOpt(PartitionOptions{Kernels: 2, Intra: true}); eff != 2 {
		t.Fatalf("effective kernels = %d", eff)
	}
	h := &pingHandler{n: n, hops: 100}
	round := func() {
		// Mirrored chains between the two hosts keep both partition
		// pools balanced, as in the WAN-cut variant.
		p := n.NewPacketAt(hosts[0][0])
		p.Src, p.Dst, p.Bytes = hosts[0][0], hosts[0][1], 1024
		p.Handler = h
		n.Send(p)
		q := n.NewPacketAt(hosts[0][1])
		q.Src, q.Dst, q.Bytes = hosts[0][1], hosts[0][0], 1024
		q.Handler = h
		n.Send(q)
		n.Run()
	}
	round() // warmup
	if allocs := testing.AllocsPerRun(5, round); allocs > 0 {
		t.Fatalf("intra partitioned steady-state run allocated %.1f/op, want 0", allocs)
	}
}
