package netsim

import (
	"testing"
	"time"

	"repro/internal/sim"
)

// A zero-rate generator used to divide by zero (meanGap = +Inf) and
// still inject one packet before the self-schedule pushed the next
// arrival past any horizon.
func TestCrossTrafficZeroBpsInjectsNothing(t *testing.T) {
	n, a, b := twoHosts(LinkConfig{Bps: 1e9, Delay: time.Millisecond})
	ct := &CrossTraffic{Net: n, Src: a.ID, Dst: b.ID, Bps: 0, Seed: 1}
	ct.Start(time.Second)
	n.K.Run()
	if sent, delivered, dropped := ct.Stats(); sent != 0 || delivered != 0 || dropped != 0 {
		t.Errorf("Bps=0 generator stats = %d/%d/%d, want 0/0/0", sent, delivered, dropped)
	}
	if n.K.Pending() != 0 {
		t.Errorf("Bps=0 generator left %d pending events", n.K.Pending())
	}
}

// The horizon is half-open: the injection loop used `>` so an arrival
// landing exactly on Now()+horizon still fired. A zero horizon is the
// degenerate case — the very first injection runs at Now() == end and
// must not send.
func TestCrossTrafficHorizonIsExclusive(t *testing.T) {
	n, a, b := twoHosts(LinkConfig{Bps: 1e9, Delay: time.Millisecond})
	ct := &CrossTraffic{Net: n, Src: a.ID, Dst: b.ID, Bps: 100e6, Seed: 2}
	ct.Start(0)
	n.K.Run()
	if sent, _, _ := ct.Stats(); sent != 0 {
		t.Errorf("zero-horizon generator sent %d packets, want 0", sent)
	}
}

// Stop() latched forever: a second Start() saw stopped==true and
// silently injected nothing.
func TestCrossTrafficRestartAfterStop(t *testing.T) {
	n, a, b := twoHosts(LinkConfig{Bps: 1e9, Delay: time.Millisecond})
	ct := &CrossTraffic{Net: n, Src: a.ID, Dst: b.ID, Bps: 100e6, Seed: 3}
	ct.Start(100 * time.Millisecond)
	n.K.RunUntil(n.K.Now().Add(10 * time.Millisecond))
	ct.Stop()
	n.K.Run()
	firstPhase, _, _ := ct.Stats()
	if firstPhase == 0 {
		t.Fatal("first phase sent nothing; test topology broken")
	}

	ct.Start(100 * time.Millisecond)
	n.K.Run()
	total, delivered, dropped := ct.Stats()
	if total <= firstPhase {
		t.Errorf("restarted generator sent nothing: %d packets before Stop, %d total", firstPhase, total)
	}
	if delivered+dropped != total {
		t.Errorf("accounting: sent %d != delivered %d + dropped %d", total, delivered, dropped)
	}
}

// Stop-then-Start from kernel context (no intervening kernel drain)
// must kill the old injection chain: leaving it pending would run two
// chains at once and double the offered load.
func TestCrossTrafficStopStartDoesNotDoubleLoad(t *testing.T) {
	const window = 100 * time.Millisecond
	singleRate := func() int64 {
		n, a, b := twoHosts(LinkConfig{Bps: 1e9, Delay: time.Millisecond})
		ct := &CrossTraffic{Net: n, Src: a.ID, Dst: b.ID, Bps: 100e6, Seed: 9}
		ct.Start(window)
		n.K.Run()
		sent, _, _ := ct.Stats()
		return sent
	}()

	n, a, b := twoHosts(LinkConfig{Bps: 1e9, Delay: time.Millisecond})
	ct := &CrossTraffic{Net: n, Src: a.ID, Dst: b.ID, Bps: 100e6, Seed: 9}
	ct.Start(2 * window)
	// Mid-stream, restart the generator without draining the kernel.
	n.K.At(n.K.Now().Add(window), func() {
		ct.Stop()
		ct.Start(window)
	})
	n.K.Run()
	sent, _, _ := ct.Stats()
	// Two sequential windows of injection: roughly 2x one window's
	// packets. A zombie chain would add a third window (~3x).
	if max := 5 * singleRate / 2; sent > max {
		t.Errorf("restarted generator sent %d packets (single window sends %d); zombie chain suspected", sent, singleRate)
	}
	if sent < singleRate {
		t.Errorf("restarted generator sent %d packets, less than one window's %d", sent, singleRate)
	}
}

// A stopped generator must leave no pending events behind, so
// simulations that stop their background load can terminate.
func TestCrossTrafficStopCancelsPendingInjection(t *testing.T) {
	n, a, b := twoHosts(LinkConfig{Bps: 1e9, Delay: time.Millisecond})
	ct := &CrossTraffic{Net: n, Src: a.ID, Dst: b.ID, Bps: 100e6, Seed: 4}
	ct.Start(time.Hour)
	n.K.RunUntil(n.K.Now().Add(10 * time.Millisecond))
	ct.Stop()
	n.K.Run() // drain in-flight packets
	if p := n.K.Pending(); p != 0 {
		t.Errorf("stopped generator left %d pending events", p)
	}
}

// A 5x-overloaded link builds an output queue far deeper than the
// ring's initial 16 slots, so the ring must grow and its head index
// must wrap while arrivals and departures interleave. Every packet
// still has to come out exactly once.
func TestCrossTrafficDeepQueueWraparound(t *testing.T) {
	// 10 Mbit/s link, 9180-byte packets (~7.3 ms serialization each);
	// 50 Mbit/s offered for 200 ms queues ~100 packets deep.
	n, a, b := twoHosts(LinkConfig{Bps: 10e6, Delay: time.Millisecond, MTU: 9180, QueueBytes: 64 << 20})
	ct := &CrossTraffic{Net: n, Src: a.ID, Dst: b.ID, Bps: 50e6, Seed: 8}
	ct.Start(200 * time.Millisecond)
	n.K.Run()
	sent, delivered, dropped := ct.Stats()
	if sent < 100 {
		t.Fatalf("only %d packets offered; load too small to exercise a deep queue", sent)
	}
	if delivered != sent || dropped != 0 {
		t.Errorf("sent %d, delivered %d, dropped %d; want lossless delivery on a 64 MiB queue",
			sent, delivered, dropped)
	}
	ifc := a.ifaces[0]
	if ifc.q.Cap() <= 16 {
		t.Errorf("ring never grew: %d slots for a ~100-deep queue", ifc.q.Cap())
	}
	if ifc.q.Len() != 0 || ifc.queued != 0 {
		t.Errorf("queue not drained: %d packets / %d bytes left", ifc.q.Len(), ifc.queued)
	}
	// More packets passed through than the ring has slots, and the ring
	// never emptied during the burst, so the head index must have
	// wrapped (the queue peaked near capacity while draining).
	if int(delivered) <= ifc.q.Cap() {
		t.Errorf("only %d packets through a %d-slot ring; wraparound not exercised", delivered, ifc.q.Cap())
	}
}

// Repeated fill/drain waves cycle the ring head through the slice
// several times; FIFO order must survive every wraparound.
func TestDeepQueueFIFOAcrossWraparound(t *testing.T) {
	n, a, b := twoHosts(LinkConfig{Bps: 100e6, Delay: time.Millisecond, MTU: 65536, QueueBytes: 64 << 20})
	var order []int
	seq := 0
	// 6 waves of 20 x 10000-byte packets (0.8 ms serialization each),
	// 25 ms apart: each wave queues ~19 deep and fully drains before
	// the next, so the head laps the grown ring again and again.
	for w := 0; w < 6; w++ {
		at := sim.Time(w) * sim.Time(25*time.Millisecond)
		n.K.At(at, func() {
			for i := 0; i < 20; i++ {
				k := seq
				seq++
				n.Send(&Packet{Src: a.ID, Dst: b.ID, Bytes: 10000,
					OnDeliver: func(*Packet) { order = append(order, k) }})
			}
		})
	}
	n.K.Run()
	if len(order) != 120 {
		t.Fatalf("delivered %d packets, want 120", len(order))
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("FIFO broken at delivery %d: got packet %d", i, v)
		}
	}
	ifc := a.ifaces[0]
	if laps := 120 / ifc.q.Cap(); laps < 2 {
		t.Errorf("ring of %d slots lapped only %d times; waves too small for the test's purpose", ifc.q.Cap(), laps)
	}
}

// Restarting with Bps=0 must still cancel the earlier chain: Start's
// restart semantics hold even when the new phase offers no load.
func TestCrossTrafficZeroBpsRestartCancelsOldChain(t *testing.T) {
	n, a, b := twoHosts(LinkConfig{Bps: 1e9, Delay: time.Millisecond})
	ct := &CrossTraffic{Net: n, Src: a.ID, Dst: b.ID, Bps: 100e6, Seed: 6}
	ct.Start(time.Hour)
	n.K.RunUntil(n.K.Now().Add(10 * time.Millisecond))
	before, _, _ := ct.Stats()
	ct.Bps = 0
	ct.Start(time.Hour) // no-load phase: old chain must die here
	n.K.Run()
	after, _, _ := ct.Stats()
	if after != before {
		t.Errorf("old chain kept injecting through a Bps=0 restart: %d -> %d packets", before, after)
	}
}
