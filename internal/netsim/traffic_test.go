package netsim

import (
	"testing"
	"time"
)

// A zero-rate generator used to divide by zero (meanGap = +Inf) and
// still inject one packet before the self-schedule pushed the next
// arrival past any horizon.
func TestCrossTrafficZeroBpsInjectsNothing(t *testing.T) {
	n, a, b := twoHosts(LinkConfig{Bps: 1e9, Delay: time.Millisecond})
	ct := &CrossTraffic{Net: n, Src: a.ID, Dst: b.ID, Bps: 0, Seed: 1}
	ct.Start(time.Second)
	n.K.Run()
	if sent, delivered, dropped := ct.Stats(); sent != 0 || delivered != 0 || dropped != 0 {
		t.Errorf("Bps=0 generator stats = %d/%d/%d, want 0/0/0", sent, delivered, dropped)
	}
	if n.K.Pending() != 0 {
		t.Errorf("Bps=0 generator left %d pending events", n.K.Pending())
	}
}

// The horizon is half-open: the injection loop used `>` so an arrival
// landing exactly on Now()+horizon still fired. A zero horizon is the
// degenerate case — the very first injection runs at Now() == end and
// must not send.
func TestCrossTrafficHorizonIsExclusive(t *testing.T) {
	n, a, b := twoHosts(LinkConfig{Bps: 1e9, Delay: time.Millisecond})
	ct := &CrossTraffic{Net: n, Src: a.ID, Dst: b.ID, Bps: 100e6, Seed: 2}
	ct.Start(0)
	n.K.Run()
	if sent, _, _ := ct.Stats(); sent != 0 {
		t.Errorf("zero-horizon generator sent %d packets, want 0", sent)
	}
}

// Stop() latched forever: a second Start() saw stopped==true and
// silently injected nothing.
func TestCrossTrafficRestartAfterStop(t *testing.T) {
	n, a, b := twoHosts(LinkConfig{Bps: 1e9, Delay: time.Millisecond})
	ct := &CrossTraffic{Net: n, Src: a.ID, Dst: b.ID, Bps: 100e6, Seed: 3}
	ct.Start(100 * time.Millisecond)
	n.K.RunUntil(n.K.Now().Add(10 * time.Millisecond))
	ct.Stop()
	n.K.Run()
	firstPhase, _, _ := ct.Stats()
	if firstPhase == 0 {
		t.Fatal("first phase sent nothing; test topology broken")
	}

	ct.Start(100 * time.Millisecond)
	n.K.Run()
	total, delivered, dropped := ct.Stats()
	if total <= firstPhase {
		t.Errorf("restarted generator sent nothing: %d packets before Stop, %d total", firstPhase, total)
	}
	if delivered+dropped != total {
		t.Errorf("accounting: sent %d != delivered %d + dropped %d", total, delivered, dropped)
	}
}

// Stop-then-Start from kernel context (no intervening kernel drain)
// must kill the old injection chain: leaving it pending would run two
// chains at once and double the offered load.
func TestCrossTrafficStopStartDoesNotDoubleLoad(t *testing.T) {
	const window = 100 * time.Millisecond
	singleRate := func() int64 {
		n, a, b := twoHosts(LinkConfig{Bps: 1e9, Delay: time.Millisecond})
		ct := &CrossTraffic{Net: n, Src: a.ID, Dst: b.ID, Bps: 100e6, Seed: 9}
		ct.Start(window)
		n.K.Run()
		sent, _, _ := ct.Stats()
		return sent
	}()

	n, a, b := twoHosts(LinkConfig{Bps: 1e9, Delay: time.Millisecond})
	ct := &CrossTraffic{Net: n, Src: a.ID, Dst: b.ID, Bps: 100e6, Seed: 9}
	ct.Start(2 * window)
	// Mid-stream, restart the generator without draining the kernel.
	n.K.At(n.K.Now().Add(window), func() {
		ct.Stop()
		ct.Start(window)
	})
	n.K.Run()
	sent, _, _ := ct.Stats()
	// Two sequential windows of injection: roughly 2x one window's
	// packets. A zombie chain would add a third window (~3x).
	if max := 5 * singleRate / 2; sent > max {
		t.Errorf("restarted generator sent %d packets (single window sends %d); zombie chain suspected", sent, singleRate)
	}
	if sent < singleRate {
		t.Errorf("restarted generator sent %d packets, less than one window's %d", sent, singleRate)
	}
}

// A stopped generator must leave no pending events behind, so
// simulations that stop their background load can terminate.
func TestCrossTrafficStopCancelsPendingInjection(t *testing.T) {
	n, a, b := twoHosts(LinkConfig{Bps: 1e9, Delay: time.Millisecond})
	ct := &CrossTraffic{Net: n, Src: a.ID, Dst: b.ID, Bps: 100e6, Seed: 4}
	ct.Start(time.Hour)
	n.K.RunUntil(n.K.Now().Add(10 * time.Millisecond))
	ct.Stop()
	n.K.Run() // drain in-flight packets
	if p := n.K.Pending(); p != 0 {
		t.Errorf("stopped generator left %d pending events", p)
	}
}

// Restarting with Bps=0 must still cancel the earlier chain: Start's
// restart semantics hold even when the new phase offers no load.
func TestCrossTrafficZeroBpsRestartCancelsOldChain(t *testing.T) {
	n, a, b := twoHosts(LinkConfig{Bps: 1e9, Delay: time.Millisecond})
	ct := &CrossTraffic{Net: n, Src: a.ID, Dst: b.ID, Bps: 100e6, Seed: 6}
	ct.Start(time.Hour)
	n.K.RunUntil(n.K.Now().Add(10 * time.Millisecond))
	before, _, _ := ct.Stats()
	ct.Bps = 0
	ct.Start(time.Hour) // no-load phase: old chain must die here
	n.K.Run()
	after, _, _ := ct.Stats()
	if after != before {
		t.Errorf("old chain kept injecting through a Bps=0 restart: %d -> %d packets", before, after)
	}
}
