package netsim

import (
	"fmt"
	"sort"
	"time"
	"unsafe"

	"repro/internal/sim"
	"repro/internal/sim/pdes"
)

// DefaultCut is the link-delay threshold separating "local" from "wide
// area" when Partition picks the cut: links at or above it become
// cross-partition channels. 100 µs sits far above testbed LAN hops
// (~10 µs) and far below the gigabit WAN's propagation delay (~500 µs).
const DefaultCut = 100 * time.Microsecond

// part is one partition of a partitioned network: its kernel and its
// packet pool.
type part struct {
	k    *sim.Kernel
	pool *pktPool
}

// xqDeliver injects one cross-partition arrival into the receiving
// node's kernel. It is the pdes.Queue deliver hook, running on the
// receiver's goroutine after the window-closing barrier.
type xqDeliver struct {
	k  *sim.Kernel
	nd *Node
}

func (d *xqDeliver) deliver(p unsafe.Pointer, at sim.Time) {
	d.k.AtFunc(at, arriveStep, unsafe.Pointer(d.nd), p)
}

// Partition splits the network into up to k partitions, cutting every
// link whose propagation delay is at least cut (DefaultCut if cut <= 0),
// and binds each partition to its own kernel so Run executes them as a
// conservative parallel simulation. The lookahead is the minimum delay
// over the cut links — the guarantee that lets each kernel run a full
// window ahead without hearing from its neighbours.
//
// Partition must run on a quiescent, just-built network: after
// ComputeRoutes, before any traffic is scheduled (it panics otherwise,
// and Connect panics after it). The node→partition assignment is a
// deterministic function of the topology alone, so reports stay
// byte-identical across runs and kernel counts.
//
// It returns the effective kernel count: components connected by
// sub-cut links cannot be split, so a topology with one WAN link yields
// at most 2 regardless of k. With k <= 1 or a single component the
// network is left untouched on its original kernel.
func (n *Network) Partition(k int, cut time.Duration) int {
	if k <= 1 {
		return 1
	}
	if n.group != nil {
		panic("netsim: Partition called twice")
	}
	if n.K.Pending() > 0 || n.K.Now() != 0 {
		panic("netsim: Partition on a network with scheduled or executed events")
	}
	if cut <= 0 {
		cut = DefaultCut
	}

	// Connected components over the sub-cut links, in node-ID order so
	// component numbering is deterministic.
	comp := make([]int, len(n.nodes))
	for i := range comp {
		comp[i] = -1
	}
	ncomp := 0
	for _, nd := range n.nodes {
		if comp[nd.ID] != -1 {
			continue
		}
		frontier := []*Node{nd}
		comp[nd.ID] = ncomp
		for len(frontier) > 0 {
			cur := frontier[len(frontier)-1]
			frontier = frontier[:len(frontier)-1]
			for _, ifc := range cur.ifaces {
				if ifc.link.Delay >= cut {
					continue
				}
				peer := ifc.peer.node
				if comp[peer.ID] == -1 {
					comp[peer.ID] = ncomp
					frontier = append(frontier, peer)
				}
			}
		}
		ncomp++
	}
	if ncomp == 1 {
		return 1
	}
	if k > ncomp {
		k = ncomp
	}

	// Assign components to partitions: longest-processing-time — sort
	// components by size descending (component ID breaks ties, keeping
	// the assignment deterministic), each to the least-loaded partition.
	size := make([]int, ncomp)
	for _, c := range comp {
		size[c]++
	}
	order := make([]int, ncomp)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		if size[order[a]] != size[order[b]] {
			return size[order[a]] > size[order[b]]
		}
		return order[a] < order[b]
	})
	load := make([]int, k)
	compPart := make([]int, ncomp)
	for _, c := range order {
		best := 0
		for p := 1; p < k; p++ {
			if load[p] < load[best] {
				best = p
			}
		}
		compPart[c] = best
		load[best] += size[c]
	}

	// Build the partitions. Partition 0 keeps the network's original
	// kernel and default pool, so unpartitioned callers of K/NewPacket
	// observe no change.
	n.parts = make([]*part, k)
	n.parts[0] = &part{k: n.K, pool: &n.defPool}
	for p := 1; p < k; p++ {
		n.parts[p] = &part{k: sim.NewKernel(), pool: &pktPool{}}
	}
	for _, nd := range n.nodes {
		pt := n.parts[compPart[comp[nd.ID]]]
		nd.k = pt.k
		nd.pool = pt.pool
	}

	// Cross-partition channels: one queue per cut-link direction whose
	// endpoints landed in different partitions, plus the lookahead (the
	// minimum delay among those links). Iterating nodes then ifaces in
	// ID/attachment order keeps every member's drain order — and with
	// it the injection order of equal-timestamp arrivals — deterministic.
	members := make([]*pdes.Member, k)
	for p := range members {
		members[p] = &pdes.Member{K: n.parts[p].k}
	}
	lookahead := time.Duration(1) << 62
	ncut := 0
	for _, nd := range n.nodes {
		for _, ifc := range nd.ifaces {
			peer := ifc.peer.node
			sp, rp := compPart[comp[nd.ID]], compPart[comp[peer.ID]]
			if sp == rp {
				continue
			}
			d := &xqDeliver{k: peer.k, nd: peer}
			q := pdes.NewQueue(64, d.deliver)
			ifc.xq = q
			members[rp].In = append(members[rp].In, q)
			if ifc.link.Delay < lookahead {
				lookahead = ifc.link.Delay
			}
			ncut++
		}
	}
	if ncut > 0 && lookahead < cut {
		// Can't happen: every cut link has Delay >= cut by construction.
		panic(fmt.Sprintf("netsim: cut link delay %v below cut %v", lookahead, cut))
	}

	n.lookahead = lookahead
	n.group = pdes.NewGroup(lookahead, members)
	return k
}

// Lookahead reports the synchronization window of the partitioned
// network (zero before Partition): the minimum propagation delay over
// the cut links.
func (n *Network) Lookahead() time.Duration {
	if n.group == nil {
		return 0
	}
	return n.lookahead
}
