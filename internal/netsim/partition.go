package netsim

import (
	"fmt"
	"sort"
	"time"
	"unsafe"

	"repro/internal/sim"
	"repro/internal/sim/pdes"
)

// DefaultCut is the link-delay threshold separating "local" from "wide
// area" when Partition picks the cut: links at or above it become
// cross-partition channels. 100 µs sits far above testbed LAN hops
// (~10 µs) and far below the gigabit WAN's propagation delay (~500 µs).
const DefaultCut = 100 * time.Microsecond

// PartitionOptions configures PartitionOpt.
type PartitionOptions struct {
	// Kernels is the target partition count (the effective count may be
	// lower; see PartitionOpt).
	Kernels int
	// Cut is the link-delay threshold for wide-area cut links
	// (DefaultCut if zero or negative).
	Cut time.Duration
	// Intra allows cutting inside a connected component at switch
	// boundaries — positive-delay links incident to a relay node
	// (forwarding cost or copy-bandwidth cap) — when the wide-area cut
	// alone yields fewer components than Kernels. Each such cut edge
	// synchronizes on its own (smaller) link delay, so this only pays
	// off with per-pair lookahead, which PartitionOpt always enables.
	Intra bool
}

// part is one partition of a partitioned network: its kernel and its
// packet pool.
type part struct {
	k    *sim.Kernel
	pool *pktPool
}

// xqDeliver injects one cross-partition arrival into the receiving
// node's kernel. It is the pdes.Queue deliver hook, running on the
// receiver's goroutine after the window-closing barrier.
type xqDeliver struct {
	k  *sim.Kernel
	nd *Node
}

func (d *xqDeliver) deliver(p unsafe.Pointer, at sim.Time) {
	d.k.AtFunc(at, arriveStep, unsafe.Pointer(d.nd), p)
}

// Partition splits the network into up to k partitions, cutting every
// link whose propagation delay is at least cut (DefaultCut if cut <= 0),
// and binds each partition to its own kernel so Run executes them as a
// conservative parallel simulation. It is PartitionOpt with the
// wide-area cut only — a topology that is one big LAN stays serial; use
// PartitionOpt with Intra to split it at switch boundaries.
func (n *Network) Partition(k int, cut time.Duration) int {
	return n.PartitionOpt(PartitionOptions{Kernels: k, Cut: cut})
}

// PartitionOpt splits the network into up to o.Kernels partitions and
// binds each to its own kernel so Run executes them as a conservative
// parallel simulation. Every cut edge carries its own link delay as
// that pair's synchronization bound (per-pair lookahead): two
// partitions joined by a short edge sync tightly without being gated by
// a long edge elsewhere, and vice versa.
//
// PartitionOpt must run on a quiescent, just-built network: after
// ComputeRoutes, before any traffic is scheduled (it panics otherwise,
// and Connect panics after it). The node→partition assignment is a
// deterministic function of the topology and the deterministic
// per-node work counters (zero on a fresh network), so reports stay
// byte-identical across runs and kernel counts.
//
// It returns the effective kernel count: nodes connected by uncuttable
// links cannot be split, so the topology bounds the count regardless of
// o.Kernels. With o.Kernels <= 1 or a single component the network is
// left untouched on its original kernel.
func (n *Network) PartitionOpt(o PartitionOptions) int {
	k := o.Kernels
	if k <= 1 {
		return 1
	}
	if n.group != nil {
		panic("netsim: Partition called twice")
	}
	if n.K.Pending() > 0 || n.K.Now() != 0 {
		panic("netsim: Partition on a network with scheduled or executed events")
	}
	if o.Cut <= 0 {
		o.Cut = DefaultCut
	}
	n.popts = o

	comp, ncomp := n.computeIslands(o)
	if ncomp == 1 {
		return 1
	}
	if k > ncomp {
		k = ncomp
	}
	compPart := n.assign(comp, ncomp, k)

	// Build the partitions. Partition 0 keeps the network's original
	// kernel and default pool, so unpartitioned callers of K/NewPacket
	// observe no change.
	n.parts = make([]*part, k)
	n.parts[0] = &part{k: n.K, pool: &n.defPool}
	for p := 1; p < k; p++ {
		n.parts[p] = &part{k: sim.NewKernel(), pool: &pktPool{}}
	}
	n.wire(comp, compPart)
	return k
}

// relay reports whether the node forwards at a modelled cost — the
// switches and gateways whose ports are the natural intra-component cut
// boundaries.
func (nd *Node) relay() bool { return nd.ForwardCost > 0 || nd.ForwardBps > 0 }

// cuttable reports whether ifc's link may become a cross-partition
// channel under options o: wide-area links always, switch-boundary
// links when Intra is on. Zero-delay links are never cuttable — a cut
// edge's delay is its synchronization bound, and a zero bound would
// serialize the rounds.
func (n *Network) cuttable(ifc *Iface, o PartitionOptions, intra bool) bool {
	l := ifc.link
	if l.Delay >= o.Cut {
		return true
	}
	if !intra || l.Delay <= 0 {
		return false
	}
	return ifc.node.relay() || ifc.peer.node.relay()
}

// computeIslands groups nodes into the finest partitionable units under
// o: connected components over uncuttable links. The wide-area cut is
// tried first; when it cannot yield o.Kernels components and Intra is
// on, the switch-boundary cut refines it. The refinement choice is a
// function of (topology, o) alone, so Rebalance recomputes the same
// islands.
func (n *Network) computeIslands(o PartitionOptions) ([]int, int) {
	comp, ncomp := n.islands(o, false)
	if o.Intra && ncomp < o.Kernels {
		comp, ncomp = n.islands(o, true)
		n.intra = true
	}
	return comp, ncomp
}

// islands computes connected components over links that are not
// cuttable, in node-ID order so component numbering is deterministic.
func (n *Network) islands(o PartitionOptions, intra bool) ([]int, int) {
	comp := make([]int, len(n.nodes))
	for i := range comp {
		comp[i] = -1
	}
	ncomp := 0
	for _, nd := range n.nodes {
		if comp[nd.ID] != -1 {
			continue
		}
		frontier := []*Node{nd}
		comp[nd.ID] = ncomp
		for len(frontier) > 0 {
			cur := frontier[len(frontier)-1]
			frontier = frontier[:len(frontier)-1]
			for _, ifc := range cur.ifaces {
				if n.cuttable(ifc, o, intra) {
					continue
				}
				peer := ifc.peer.node
				if comp[peer.ID] == -1 {
					comp[peer.ID] = ncomp
					frontier = append(frontier, peer)
				}
			}
		}
		ncomp++
	}
	return comp, ncomp
}

// assign maps islands to k partitions: longest-processing-time over
// island costs. The cost of an island is the work its nodes carried in
// previous runs (the kernels' deterministic event counters, sampled per
// hop), or the node count on a fresh network where no traffic has run —
// so the first assignment matches the old static LPT and later
// Rebalance calls see real load. Island ID breaks ties, keeping the
// assignment deterministic.
func (n *Network) assign(comp []int, ncomp, k int) []int {
	cost := make([]int64, ncomp)
	var worked int64
	for _, nd := range n.nodes {
		cost[comp[nd.ID]] += nd.work
		worked += nd.work
	}
	if worked == 0 {
		for i := range cost {
			cost[i] = 0
		}
		for _, nd := range n.nodes {
			cost[comp[nd.ID]]++
		}
	}
	for i := range cost {
		if cost[i] < 1 {
			cost[i] = 1 // an idle island still occupies a slot
		}
	}
	order := make([]int, ncomp)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		if cost[order[a]] != cost[order[b]] {
			return cost[order[a]] > cost[order[b]]
		}
		return order[a] < order[b]
	})
	load := make([]int64, k)
	compPart := make([]int, ncomp)
	for _, c := range order {
		best := 0
		for p := 1; p < k; p++ {
			if load[p] < load[best] {
				best = p
			}
		}
		compPart[c] = best
		load[best] += cost[c]
	}
	return compPart
}

// wire binds every node to its partition's kernel and pool and builds
// the cross-partition channels: one queue per cut-link direction whose
// endpoints landed in different partitions, each annotated with its own
// link delay (the per-pair lookahead), plus the global lookahead floor
// (the minimum delay among them). Iterating nodes then ifaces in
// ID/attachment order keeps every member's drain order — and with it
// the injection order of equal-timestamp arrivals — deterministic.
func (n *Network) wire(comp []int, compPart []int) {
	k := len(n.parts)
	for _, nd := range n.nodes {
		pt := n.parts[compPart[comp[nd.ID]]]
		nd.k = pt.k
		nd.pool = pt.pool
	}
	members := make([]*pdes.Member, k)
	for p := range members {
		members[p] = &pdes.Member{K: n.parts[p].k}
	}
	lookahead := time.Duration(1) << 62
	ncut := 0
	for _, nd := range n.nodes {
		for _, ifc := range nd.ifaces {
			peer := ifc.peer.node
			sp, rp := compPart[comp[nd.ID]], compPart[comp[peer.ID]]
			if sp == rp {
				continue
			}
			if ifc.link.Delay <= 0 {
				// Can't happen: cuttable never admits zero-delay links.
				panic(fmt.Sprintf("netsim: cut link %q has no delay", ifc.link.Name))
			}
			d := &xqDeliver{k: peer.k, nd: peer}
			q := pdes.NewQueue(64, d.deliver)
			q.SetEdge(sp, ifc.link.Delay)
			ifc.xq = q
			members[rp].In = append(members[rp].In, q)
			if ifc.link.Delay < lookahead {
				lookahead = ifc.link.Delay
			}
			ncut++
		}
	}
	if ncut > 0 && !n.intra && lookahead < n.popts.Cut {
		// Can't happen: without Intra every cut link has Delay >= Cut.
		panic(fmt.Sprintf("netsim: cut link delay %v below cut %v", lookahead, n.popts.Cut))
	}
	n.lookahead = lookahead
	n.group = pdes.NewGroup(lookahead, members)
}

// Rebalance recomputes the island-to-partition assignment from the work
// counters accumulated by previous runs and rewires the cut channels
// accordingly — the between-runs load balancing of a skewed grid. The
// partition (kernel) count is unchanged; only which island runs on
// which kernel moves. Call only while the network is quiescent (never
// mid-run): every kernel is dry and, thanks to the group's termination
// resync, at the same virtual time, so moving a node is pure
// bookkeeping. The counters are event counts, not wall clocks, so the
// new assignment — like the old — is deterministic, and reports remain
// byte-identical across any assignment.
func (n *Network) Rebalance() {
	if n.group == nil {
		panic("netsim: Rebalance before Partition")
	}
	if n.group.Pending() > 0 {
		panic("netsim: Rebalance with pending events")
	}
	comp, ncomp := n.computeIslands(n.popts)
	compPart := n.assign(comp, ncomp, len(n.parts))
	for _, nd := range n.nodes {
		for _, ifc := range nd.ifaces {
			ifc.xq = nil
		}
	}
	n.group.Close()
	// All kernels left the last run resynchronized to the same clock;
	// normalize anyway so a never-run group's fresh kernels line up too.
	now := n.Now()
	for _, pt := range n.parts {
		pt.k.AdvanceTo(now)
	}
	n.wire(comp, compPart)
}

// Lookahead reports the synchronization floor of the partitioned
// network (zero before Partition): the minimum propagation delay over
// the cut links. Pairs joined by longer edges synchronize on their own
// larger bounds (per-pair lookahead).
func (n *Network) Lookahead() time.Duration {
	if n.group == nil {
		return 0
	}
	return n.lookahead
}
