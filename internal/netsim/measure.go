package netsim

import (
	"sync/atomic"
	"time"

	"repro/internal/sim"
)

// FloodResult summarizes a fixed-size packet flood between two hosts.
type FloodResult struct {
	Sent      int
	Delivered int
	Dropped   int
	First     sim.Time
	Last      sim.Time
	Bytes     int64
}

// ThroughputBps reports the delivered goodput in bit/s, measured from
// injection start (time of the Flood call) to the last delivery.
func (r FloodResult) ThroughputBps(start sim.Time) float64 {
	if r.Delivered == 0 || r.Last <= start {
		return 0
	}
	return float64(r.Bytes) * 8 / r.Last.Sub(start).Seconds()
}

// Flood injects count packets of pktBytes back to back from src to dst
// and runs the kernel until all are delivered or dropped. It is a
// UDP-style open-loop measurement: it exposes raw path capacity without
// any window dynamics.
func Flood(n *Network, src, dst NodeID, pktBytes, count int) FloodResult {
	var res FloodResult
	res.First = -1
	// Delivery runs on dst's kernel, drops on whichever kernel hosts the
	// full queue; dstK clocks deliveries, and the injection loop below
	// runs before Run so the callbacks never race the loop.
	dstK := n.KernelOf(dst)
	var dropped int64
	for i := 0; i < count; i++ {
		p := &Packet{
			Src: src, Dst: dst, Bytes: pktBytes,
			OnDeliver: func(p *Packet) {
				if res.First < 0 {
					res.First = dstK.Now()
				}
				res.Last = dstK.Now()
				res.Delivered++
				res.Bytes += int64(p.Bytes)
			},
			OnDrop: func(*Packet) { atomic.AddInt64(&dropped, 1) },
		}
		n.Send(p)
		res.Sent++
	}
	n.Run()
	res.Dropped = int(dropped)
	return res
}

// Ping measures the round-trip time of a single request of reqBytes and
// reply of repBytes between two hosts, including all queueing-free path
// costs. It runs the kernel to completion.
func Ping(n *Network, a, b NodeID, reqBytes, repBytes int) time.Duration {
	ka := n.KernelOf(a)
	start := ka.Now()
	var end sim.Time
	req := &Packet{Src: a, Dst: b, Bytes: reqBytes}
	req.OnDeliver = func(*Packet) {
		rep := &Packet{Src: b, Dst: a, Bytes: repBytes}
		rep.OnDeliver = func(*Packet) { end = ka.Now() }
		n.Send(rep)
	}
	n.Send(req)
	n.Run()
	return end.Sub(start)
}
