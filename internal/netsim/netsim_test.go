package netsim

import (
	"math"
	"testing"
	"time"

	"repro/internal/sim"
)

// twoHosts builds a -- b with the given link config and computed routes.
func twoHosts(cfg LinkConfig) (*Network, *Node, *Node) {
	k := sim.NewKernel()
	n := New(k)
	a := n.AddNode("a")
	b := n.AddNode("b")
	n.Connect(a, b, cfg)
	n.ComputeRoutes()
	return n, a, b
}

func TestSinglePacketDelay(t *testing.T) {
	n, a, b := twoHosts(LinkConfig{Bps: 1e9, Delay: time.Millisecond, MTU: 65536})
	var arrived sim.Time
	n.K.At(0, func() {
		n.Send(&Packet{Src: a.ID, Dst: b.ID, Bytes: 125000, // 1 ms serialization at 1 Gbit/s
			OnDeliver: func(*Packet) { arrived = n.K.Now() }})
	})
	n.K.Run()
	want := sim.Time(2 * time.Millisecond) // 1 ms tx + 1 ms prop
	if arrived != want {
		t.Errorf("arrival at %v, want %v", arrived, want)
	}
}

func TestPathDelayMatchesSimulation(t *testing.T) {
	n, a, b := twoHosts(LinkConfig{Bps: 622e6, Delay: 500 * time.Microsecond, MTU: 9180})
	analytic, err := n.PathDelay(a.ID, b.ID, 9180)
	if err != nil {
		t.Fatal(err)
	}
	var arrived sim.Time
	n.K.At(0, func() {
		n.Send(&Packet{Src: a.ID, Dst: b.ID, Bytes: 9180,
			OnDeliver: func(*Packet) { arrived = n.K.Now() }})
	})
	n.K.Run()
	if got := arrived.Sub(0); got != analytic {
		t.Errorf("simulated %v != analytic %v", got, analytic)
	}
}

func TestFloodSaturatesLink(t *testing.T) {
	n, a, b := twoHosts(LinkConfig{Bps: 100e6, Delay: time.Millisecond, MTU: 65536, QueueBytes: 256 << 20})
	res := Flood(n, a.ID, b.ID, 62500, 200) // 100 Mbit total / 0.5 Mbit pkts
	if res.Delivered != 200 || res.Dropped != 0 {
		t.Fatalf("delivered %d dropped %d", res.Delivered, res.Dropped)
	}
	bps := res.ThroughputBps(0)
	if math.Abs(bps-100e6)/100e6 > 0.02 {
		t.Errorf("flood throughput = %.1f Mbit/s, want ~100", bps/1e6)
	}
}

func TestQueueDropsWhenFull(t *testing.T) {
	n, a, b := twoHosts(LinkConfig{Bps: 1e6, Delay: time.Millisecond, MTU: 65536, QueueBytes: 100000})
	res := Flood(n, a.ID, b.ID, 10000, 100) // 1 MB into a 100 KB queue on a slow link
	if res.Dropped == 0 {
		t.Error("expected drops on overfilled queue")
	}
	if res.Delivered+res.Dropped != res.Sent {
		t.Errorf("delivered %d + dropped %d != sent %d", res.Delivered, res.Dropped, res.Sent)
	}
	if a.Drops() != int64(res.Dropped) {
		t.Errorf("node drop counter %d, want %d", a.Drops(), res.Dropped)
	}
}

func TestHostRateCap(t *testing.T) {
	// A 33 MByte/s host (SP2 microchannel model) on a 622 Mbit/s
	// link: throughput must be capped by the host, not the link.
	k := sim.NewKernel()
	n := New(k)
	a := n.AddNode("t3e")
	b := n.AddNode("sp2", WithHostBps(264e6))
	n.Connect(a, b, LinkConfig{Bps: 622e6, Delay: time.Millisecond, MTU: 65536, QueueBytes: 1 << 30})
	n.ComputeRoutes()
	res := Flood(n, a.ID, b.ID, 65536, 500)
	bps := res.ThroughputBps(0)
	if bps > 270e6 || bps < 250e6 {
		t.Errorf("capped throughput = %.1f Mbit/s, want ~264", bps/1e6)
	}
}

func TestGatewayForwardingCost(t *testing.T) {
	// a -- gw -- b where the gateway adds 50 us + copy time per hop.
	k := sim.NewKernel()
	n := New(k)
	a := n.AddNode("a")
	gw := n.AddNode("gw", WithForwardCost(50*time.Microsecond, 2.6e9))
	b := n.AddNode("b")
	n.Connect(a, gw, LinkConfig{Bps: 800e6, Delay: 10 * time.Microsecond, MTU: 65536})
	n.Connect(gw, b, LinkConfig{Bps: 622e6, Delay: 10 * time.Microsecond, MTU: 65536})
	n.ComputeRoutes()

	direct, err := n.PathDelay(a.ID, b.ID, 65536)
	if err != nil {
		t.Fatal(err)
	}
	// Must include both serializations, both propagations and the
	// relay cost.
	bits := float64(65536 * 8)
	ser1 := time.Duration(bits / 800e6 * 1e9)
	ser2 := time.Duration(bits / 622e6 * 1e9)
	relay := 50*time.Microsecond + time.Duration(bits/2.6e9*1e9)
	want := ser1 + ser2 + 20*time.Microsecond + relay
	if diff := (direct - want).Abs(); diff > time.Microsecond {
		t.Errorf("PathDelay = %v, want %v", direct, want)
	}
}

func TestRoutingMultiHop(t *testing.T) {
	// chain a - s1 - s2 - b
	k := sim.NewKernel()
	n := New(k)
	a := n.AddNode("a")
	s1 := n.AddNode("s1")
	s2 := n.AddNode("s2")
	b := n.AddNode("b")
	n.Connect(a, s1, LinkConfig{Bps: 1e9, MTU: 65536})
	n.Connect(s1, s2, LinkConfig{Bps: 1e9, MTU: 9180})
	n.Connect(s2, b, LinkConfig{Bps: 1e9, MTU: 65536})
	n.ComputeRoutes()

	mtu, err := n.PathMTU(a.ID, b.ID)
	if err != nil {
		t.Fatal(err)
	}
	if mtu != 9180 {
		t.Errorf("path MTU = %d, want 9180 (narrowest link)", mtu)
	}

	delivered := false
	n.K.At(0, func() {
		n.Send(&Packet{Src: a.ID, Dst: b.ID, Bytes: 1000,
			OnDeliver: func(*Packet) { delivered = true }})
	})
	n.K.Run()
	if !delivered {
		t.Error("multi-hop packet not delivered")
	}
}

func TestUnreachable(t *testing.T) {
	k := sim.NewKernel()
	n := New(k)
	a := n.AddNode("a")
	b := n.AddNode("b") // not connected
	n.ComputeRoutes()
	if _, err := n.PathMTU(a.ID, b.ID); err == nil {
		t.Error("PathMTU to unreachable node should error")
	}
	dropped := false
	n.K.At(0, func() {
		n.Send(&Packet{Src: a.ID, Dst: b.ID, Bytes: 100,
			OnDrop: func(*Packet) { dropped = true }})
	})
	n.K.Run()
	if !dropped {
		t.Error("packet to unreachable node should drop")
	}
}

func TestLoopbackDelivers(t *testing.T) {
	n, a, _ := twoHosts(LinkConfig{Bps: 1e9, MTU: 65536})
	got := false
	n.K.At(0, func() {
		n.Send(&Packet{Src: a.ID, Dst: a.ID, Bytes: 100,
			OnDeliver: func(*Packet) { got = true }})
	})
	n.K.Run()
	if !got {
		t.Error("loopback packet not delivered")
	}
}

func TestPing(t *testing.T) {
	n, a, b := twoHosts(LinkConfig{Bps: 622e6, Delay: 500 * time.Microsecond, MTU: 9180})
	rtt := Ping(n, a.ID, b.ID, 64, 64)
	// Dominated by 2x500us propagation.
	if rtt < time.Millisecond || rtt > 1100*time.Microsecond {
		t.Errorf("RTT = %v, want ~1 ms", rtt)
	}
}

func TestFIFOOrderPreserved(t *testing.T) {
	n, a, b := twoHosts(LinkConfig{Bps: 10e6, Delay: time.Millisecond, MTU: 65536, QueueBytes: 64 << 20})
	var order []int
	n.K.At(0, func() {
		for i := 0; i < 50; i++ {
			i := i
			n.Send(&Packet{Src: a.ID, Dst: b.ID, Bytes: 1000 + i,
				OnDeliver: func(*Packet) { order = append(order, i) }})
		}
	})
	n.K.Run()
	if len(order) != 50 {
		t.Fatalf("delivered %d", len(order))
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("reordering detected at %d: %v", i, v)
		}
	}
}

func TestCrossTrafficOfferedLoad(t *testing.T) {
	n, a, b := twoHosts(LinkConfig{Bps: 622e6, Delay: time.Millisecond, MTU: 9180, QueueBytes: 64 << 20})
	ct := &CrossTraffic{Net: n, Src: a.ID, Dst: b.ID, Bps: 100e6, Seed: 3}
	ct.Start(2 * time.Second)
	n.K.Run()
	sent, delivered, dropped := ct.Stats()
	if sent == 0 || delivered == 0 {
		t.Fatal("no traffic generated")
	}
	if dropped != 0 {
		t.Errorf("%d drops on an uncongested link", dropped)
	}
	// Offered load over 2 s at 100 Mbit/s with 9180-byte packets:
	// ~2723 packets; Poisson spread allows +-10%.
	want := 100e6 * 2 / (9180 * 8)
	if float64(sent) < want*0.9 || float64(sent) > want*1.1 {
		t.Errorf("sent %d packets, want ~%.0f", sent, want)
	}
}

func TestCrossTrafficAddsQueueingDelay(t *testing.T) {
	// A probe packet through an 80%-loaded link sees more delay than
	// through an idle one.
	probe := func(loadBps float64) time.Duration {
		n, a, b := twoHosts(LinkConfig{Bps: 155e6, Delay: time.Millisecond, MTU: 9180, QueueBytes: 64 << 20})
		if loadBps > 0 {
			ct := &CrossTraffic{Net: n, Src: a.ID, Dst: b.ID, Bps: loadBps, Seed: 5}
			ct.Start(500 * time.Millisecond)
		}
		var sum time.Duration
		samples := 50
		for i := 0; i < samples; i++ {
			i := i
			sendAt := sim.Time(i) * sim.Time(10*time.Millisecond)
			n.K.At(sendAt, func() {
				n.Send(&Packet{Src: a.ID, Dst: b.ID, Bytes: 1000,
					OnDeliver: func(*Packet) { sum += n.K.Now().Sub(sendAt) }})
			})
		}
		n.K.Run()
		return sum / time.Duration(samples)
	}
	idle := probe(0)
	loaded := probe(124e6) // 80% of 155 Mbit/s
	if loaded <= idle {
		t.Errorf("loaded delay %v not above idle %v", loaded, idle)
	}
}

func TestLinkUtilizationAccounting(t *testing.T) {
	k := sim.NewKernel()
	n := New(k)
	a := n.AddNode("a")
	b := n.AddNode("b")
	l := n.Connect(a, b, LinkConfig{Bps: 100e6, Delay: time.Millisecond, MTU: 65536, QueueBytes: 64 << 20})
	n.ComputeRoutes()
	// 100 packets of 62500 B at 100 Mbit/s: 5 ms serialization each,
	// 500 ms total busy time.
	Flood(n, a.ID, b.ID, 62500, 100)
	if got := l.WireBytes(); got != 100*62500 {
		t.Errorf("wire bytes = %d", got)
	}
	// The link was busy essentially the whole run (packets back to
	// back), so utilization ~1.
	u := l.Utilization(k.Now())
	if u < 0.9 || u > 1.01 {
		t.Errorf("utilization = %.3f, want ~1 for a saturated one-way flood", u)
	}
	if l.Utilization(0) != 0 {
		t.Error("utilization at t=0 should be 0")
	}
}

func TestBadLinkPanics(t *testing.T) {
	k := sim.NewKernel()
	n := New(k)
	a := n.AddNode("a")
	b := n.AddNode("b")
	defer func() {
		if recover() == nil {
			t.Error("zero-bandwidth link did not panic")
		}
	}()
	n.Connect(a, b, LinkConfig{})
}
