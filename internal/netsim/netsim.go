// Package netsim is a packet-level, store-and-forward network simulator
// built on the internal/sim kernel. It models the Gigabit Testbed West
// topology: hosts and switches joined by duplex links, each link with a
// bandwidth, propagation delay, MTU and a link-layer framer (ATM/AAL5,
// HiPPI, or raw), finite drop-tail output queues, per-hop forwarding
// costs for IP gateways, and host I/O rate caps (the SP2 microchannel
// bottleneck).
//
// netsim carries opaque packets; TCP dynamics live in internal/tcpsim,
// which drives this package.
package netsim

import (
	"fmt"
	"math/rand"
	"time"
	"unsafe"

	"repro/internal/sim"
	"repro/internal/sim/pdes"
)

// NodeID identifies a node within one Network.
type NodeID int

// Framer converts an IP-level packet size into an on-the-wire size for
// a given link layer.
type Framer interface {
	// WireSize reports the number of bytes the link is occupied by
	// when carrying an n-byte network-layer packet.
	WireSize(n int) int
	// Name returns a short identifier for diagnostics.
	Name() string
}

// RawFramer is a transparent link layer (wire size == payload size).
type RawFramer struct{}

// WireSize implements Framer.
func (RawFramer) WireSize(n int) int { return n }

// Name implements Framer.
func (RawFramer) Name() string { return "raw" }

// Node is a host, gateway or switch in the network.
type Node struct {
	ID   NodeID
	Name string

	// ForwardCost is the per-packet store-and-forward cost applied
	// when this node relays a packet (zero for pure end hosts,
	// sub-microsecond for ATM switches, tens of microseconds for the
	// workstation IP gateways).
	ForwardCost time.Duration

	// ForwardBps caps the relay copy bandwidth in bit/s
	// (0 = unlimited). Together with ForwardCost this models the
	// HiPPI-ATM gateway workstations.
	ForwardBps float64

	// HostBps caps this node's end-host injection and delivery rate
	// in bit/s (0 = unlimited). It models NIC/bus limits such as the
	// SP2 microchannel.
	HostBps float64

	net     *Network
	ifaces  []*Iface
	routes  []int // dest NodeID -> iface index, -1 unreachable
	txFree  sim.Time
	rxFree  sim.Time
	fwdFree sim.Time
	dropped int64

	// k is the kernel this node's events run on: the network's K until
	// Partition assigns per-partition kernels. pool is the packet pool
	// of the node's partition — pools are per-partition so the hot
	// alloc/recycle path needs no locks when partitions run in
	// parallel.
	k    *sim.Kernel
	pool *pktPool

	// work counts packet arrivals this node handled — a deterministic
	// per-node load estimate (virtual events, not wall time) that
	// Rebalance aggregates into island costs. Touched only by the
	// node's own kernel.
	work int64
}

// Work reports the packets this node has handled across all runs — the
// deterministic load signal partition rebalancing uses. Quiescent-only
// after Partition.
func (nd *Node) Work() int64 { return nd.work }

// Iface is one direction-pair attachment of a node to a link.
type Iface struct {
	node *Node
	link *Link
	peer *Iface // other end

	// Output queue state (directed: this node -> peer): a ring buffer,
	// so deep queues under heavy cross-traffic dequeue in O(1) instead
	// of copying the whole slice head-forward per packet.
	q      sim.Ring[*Packet]
	queued int64 // bytes in queue

	busy     bool
	capBytes int64
	drops    int64

	// Per-direction wire accounting. These used to live on the Link,
	// but both directions of a partitioned link may serialize
	// concurrently on different kernels; the Link accessors sum the two
	// directions at quiescent read time.
	wireBytes int64
	busyTime  time.Duration

	// xq, when non-nil, is the cross-partition channel this direction
	// feeds: the peer node lives on another kernel, so arrivals are
	// pushed here instead of being scheduled on the peer's heap.
	xq *pdes.Queue
}

// Link joins two nodes. It is full duplex: each direction has its own
// queue and serialization.
type Link struct {
	Name   string
	Bps    float64       // payload-level serialization uses WireSize/Bps
	Delay  time.Duration // propagation delay
	MTU    int           // network-layer MTU
	Framer Framer

	a, b *Iface
}

// WireBytes reports total framed bytes carried (both directions). Read
// only while the simulation is quiescent: the per-direction counters
// live on kernels that may run in parallel.
func (l *Link) WireBytes() int64 { return l.a.wireBytes + l.b.wireBytes }

// Utilization reports the fraction of the interval [0, now] during
// which the link was serializing, summed over both directions (so a
// saturated duplex link reads 2.0). Read only while quiescent.
func (l *Link) Utilization(now sim.Time) float64 {
	if now <= 0 {
		return 0
	}
	return (l.a.busyTime + l.b.busyTime).Seconds() / now.Seconds()
}

// LinkConfig configures Connect.
type LinkConfig struct {
	Name string
	// Bps is the link bandwidth in bit/s at the layer the Framer
	// expands to (e.g. the SDH payload rate for ATM links).
	Bps float64
	// Delay is the one-way propagation delay.
	Delay time.Duration
	// MTU is the network-layer MTU (default 9180 if zero).
	MTU int
	// Framer is the link layer (default RawFramer).
	Framer Framer
	// QueueBytes is the per-direction output queue capacity
	// (default 8 MiB).
	QueueBytes int64
}

// Handler receives delivery/drop callbacks for a packet without the
// per-packet closures OnDeliver/OnDrop cost: one long-lived Handler
// value (typically a pointer into the protocol's flow state) serves
// every packet of a flow, with per-packet context carried in the
// packet's Seq/Aux fields.
type Handler interface {
	// HandleDeliver fires (in kernel context) when the packet reaches
	// Dst, after any host-rate drain.
	HandleDeliver(*Packet)
	// HandleDrop fires if the packet is lost to a full queue, an
	// unreachable destination or the hop limit.
	HandleDrop(*Packet)
}

// Packet is a network-layer datagram.
//
// Packets may be heap-allocated by the caller, or taken from the
// network's pool with NewPacket. Pooled packets are recycled by the
// network as soon as their delivery or drop callback returns, so
// callbacks must not retain them.
type Packet struct {
	Src, Dst NodeID
	Bytes    int
	Meta     any
	// Seq and Aux are opaque per-packet context for the Handler (e.g.
	// a TCP sequence range), avoiding a closure or Meta boxing.
	Seq, Aux int64
	// Handler, if non-nil, receives the delivery/drop callback.
	Handler Handler
	// OnDeliver fires (in kernel context) when the packet reaches
	// Dst, after any host-rate drain.
	OnDeliver func(*Packet)
	// OnDrop fires if the packet is lost to a full queue, an
	// unreachable destination or the hop limit.
	OnDrop func(*Packet)

	hops   int
	pooled bool
}

// pktPool is one partition's packet freelist. Pooled packets migrate
// between partitions with the traffic (a data packet is recycled at its
// destination's partition, its ACK back at the source's), which
// balances in steady state for request/response traffic.
type pktPool struct {
	free []*Packet
}

func (pp *pktPool) get() *Packet {
	if l := len(pp.free); l > 0 {
		p := pp.free[l-1]
		pp.free[l-1] = nil
		pp.free = pp.free[:l-1]
		return p // zeroed by put
	}
	return &Packet{pooled: true}
}

func (pp *pktPool) put(p *Packet) {
	*p = Packet{pooled: true}
	pp.free = append(pp.free, p)
}

// Network is a collection of nodes and links bound to a simulation
// kernel — or, after Partition, to several kernels run as one
// conservative parallel simulation.
type Network struct {
	// K is the default kernel: the only one before Partition, the
	// partition-0 kernel after. Drivers that schedule events directly
	// on K keep working unpartitioned; partition-aware drivers use
	// KernelOf.
	K     *sim.Kernel
	nodes []*Node
	seed  int64

	defPool pktPool // partition-0 pool (the only one before Partition)

	// Partition state: nil/empty while single-kernel.
	group     *pdes.Group
	parts     []*part
	lookahead time.Duration
	popts     PartitionOptions
	intra     bool // switch-boundary refinement was applied
}

// SetSeed sets the network's base random seed. Every stochastic
// component hanging off the network derives its generator through
// NewRand, so one seed here reproduces a whole simulation.
func (n *Network) SetSeed(seed int64) { n.seed = seed }

// NewRand returns a deterministically seeded generator for one
// stochastic stream (traffic generator, loss process, …). Distinct
// stream values decorrelate components sharing a network; the same
// (seed, stream) pair always yields the same sequence. With the
// default zero seed the stream value alone determines the sequence,
// which keeps historical traces byte-identical.
func (n *Network) NewRand(stream int64) *rand.Rand {
	return rand.New(rand.NewSource(n.seed + stream))
}

// NewPacket returns a zeroed packet from the default (partition-0)
// pool. The network recycles it after its delivery or drop callback
// runs (data and pure-ACK packets alike), so steady-state traffic
// allocates nothing; the caller must not retain the packet past that
// callback. On a partitioned network, traffic sources must use
// NewPacketAt instead so the allocation hits the injecting node's
// partition pool.
func (n *Network) NewPacket() *Packet {
	return n.defPool.get()
}

// NewPacketAt is NewPacket drawing from the pool of the partition that
// owns node id — the form every traffic source must use on a
// partitioned network (it must already be running on that node's
// kernel to inject there). Unpartitioned, it is identical to
// NewPacket. The recycle discipline is unchanged.
func (n *Network) NewPacketAt(id NodeID) *Packet {
	return n.nodes[id].pool.get()
}

// recycle returns a pooled packet to nd's partition freelist once the
// network is done with it, clearing its fields so a parked packet does
// not pin the finished flow's Handler/closures until the slot is
// reused. Caller-allocated packets are left to the GC.
func (n *Network) recycle(nd *Node, p *Packet) {
	if p.pooled {
		nd.pool.put(p)
	}
}

// New creates an empty network on kernel k.
func New(k *sim.Kernel) *Network {
	return &Network{K: k}
}

// AddNode creates a node. The variadic options mutate the node before
// it is returned.
func (n *Network) AddNode(name string, opts ...func(*Node)) *Node {
	nd := &Node{ID: NodeID(len(n.nodes)), Name: name, net: n, k: n.K, pool: &n.defPool}
	for _, o := range opts {
		o(nd)
	}
	n.nodes = append(n.nodes, nd)
	return nd
}

// WithForwardCost sets per-packet forwarding cost and copy bandwidth
// cap, for gateways and switches.
func WithForwardCost(perPacket time.Duration, bps float64) func(*Node) {
	return func(nd *Node) { nd.ForwardCost = perPacket; nd.ForwardBps = bps }
}

// WithHostBps caps the node's end-host I/O rate in bit/s.
func WithHostBps(bps float64) func(*Node) {
	return func(nd *Node) { nd.HostBps = bps }
}

// Node returns the node with the given id.
func (n *Network) Node(id NodeID) *Node { return n.nodes[id] }

// Nodes reports the number of nodes.
func (n *Network) Nodes() int { return len(n.nodes) }

// Connect joins two nodes with a duplex link.
func (n *Network) Connect(a, b *Node, cfg LinkConfig) *Link {
	if n.group != nil {
		panic("netsim: Connect after Partition")
	}
	if cfg.MTU == 0 {
		cfg.MTU = 9180
	}
	if cfg.Framer == nil {
		cfg.Framer = RawFramer{}
	}
	if cfg.QueueBytes == 0 {
		cfg.QueueBytes = 8 << 20
	}
	if cfg.Bps <= 0 {
		panic(fmt.Sprintf("netsim: link %q has non-positive bandwidth", cfg.Name))
	}
	l := &Link{Name: cfg.Name, Bps: cfg.Bps, Delay: cfg.Delay, MTU: cfg.MTU, Framer: cfg.Framer}
	ia := &Iface{node: a, link: l, capBytes: cfg.QueueBytes}
	ib := &Iface{node: b, link: l, capBytes: cfg.QueueBytes}
	ia.peer, ib.peer = ib, ia
	l.a, l.b = ia, ib
	a.ifaces = append(a.ifaces, ia)
	b.ifaces = append(b.ifaces, ib)
	return l
}

// ComputeRoutes builds static shortest-path (hop count) routes between
// all node pairs. Call after the topology is final; Connect after
// ComputeRoutes requires another call.
func (n *Network) ComputeRoutes() {
	for _, src := range n.nodes {
		src.routes = make([]int, len(n.nodes))
		for i := range src.routes {
			src.routes[i] = -1
		}
		// BFS from src.
		type hop struct {
			node     *Node
			firstIfc int
		}
		visited := make([]bool, len(n.nodes))
		visited[src.ID] = true
		var frontier []hop
		for i, ifc := range src.ifaces {
			peer := ifc.peer.node
			if !visited[peer.ID] {
				visited[peer.ID] = true
				src.routes[peer.ID] = i
				frontier = append(frontier, hop{peer, i})
			}
		}
		for len(frontier) > 0 {
			var next []hop
			for _, h := range frontier {
				for _, ifc := range h.node.ifaces {
					peer := ifc.peer.node
					if !visited[peer.ID] {
						visited[peer.ID] = true
						src.routes[peer.ID] = h.firstIfc
						next = append(next, hop{peer, h.firstIfc})
					}
				}
			}
			frontier = next
		}
	}
}

// PathMTU reports the smallest MTU along the route from src to dst, or
// an error if dst is unreachable.
func (n *Network) PathMTU(src, dst NodeID) (int, error) {
	if src == dst {
		return 1 << 30, nil
	}
	mtu := 1 << 30
	cur := n.nodes[src]
	for cur.ID != dst {
		if cur.routes == nil {
			return 0, fmt.Errorf("netsim: routes not computed")
		}
		idx := cur.routes[dst]
		if idx < 0 {
			return 0, fmt.Errorf("netsim: %s unreachable from %s", n.nodes[dst].Name, n.nodes[src].Name)
		}
		ifc := cur.ifaces[idx]
		if ifc.link.MTU < mtu {
			mtu = ifc.link.MTU
		}
		cur = ifc.peer.node
	}
	return mtu, nil
}

// PathRTT reports the zero-load round-trip time for a packet of n bytes
// and its (small) ACK between src and dst: serialization at every hop
// plus propagation, forwarding and host costs, both ways.
func (n *Network) PathRTT(src, dst NodeID, bytes, ackBytes int) (time.Duration, error) {
	fwd, err := n.PathDelay(src, dst, bytes)
	if err != nil {
		return 0, err
	}
	back, err := n.PathDelay(dst, src, ackBytes)
	if err != nil {
		return 0, err
	}
	return fwd + back, nil
}

// PathDelay reports the zero-load one-way delay for a single packet of
// the given size from src to dst.
func (n *Network) PathDelay(src, dst NodeID, bytes int) (time.Duration, error) {
	if src == dst {
		return 0, nil
	}
	var total time.Duration
	cur := n.nodes[src]
	// Host injection.
	if cur.HostBps > 0 {
		total += time.Duration(float64(bytes) * 8 / cur.HostBps * 1e9)
	}
	for cur.ID != dst {
		if cur.routes == nil {
			return 0, fmt.Errorf("netsim: routes not computed")
		}
		idx := cur.routes[dst]
		if idx < 0 {
			return 0, fmt.Errorf("netsim: %s unreachable from %s", n.nodes[dst].Name, n.nodes[src].Name)
		}
		ifc := cur.ifaces[idx]
		l := ifc.link
		wire := l.Framer.WireSize(bytes)
		total += time.Duration(float64(wire)*8/l.Bps*1e9) + l.Delay
		next := ifc.peer.node
		if next.ID != dst {
			total += next.relayCost(bytes)
		}
		cur = next
	}
	dstNode := n.nodes[dst]
	if dstNode.HostBps > 0 {
		total += time.Duration(float64(bytes) * 8 / dstNode.HostBps * 1e9)
	}
	return total, nil
}

func (nd *Node) relayCost(bytes int) time.Duration {
	c := nd.ForwardCost
	if nd.ForwardBps > 0 {
		c += time.Duration(float64(bytes) * 8 / nd.ForwardBps * 1e9)
	}
	return c
}

// Drops reports packets dropped at full queues on this node's egress
// interfaces.
func (nd *Node) Drops() int64 {
	total := nd.dropped
	for _, ifc := range nd.ifaces {
		total += ifc.drops
	}
	return total
}

// Closure-free event trampolines: a0 is the node or iface (which
// reaches the Network), a1 the packet — raw pointers riding in the
// event record, cast back to their concrete types here.
func forwardStep(a0, a1 unsafe.Pointer) {
	nd := (*Node)(a0)
	nd.net.forward(nd, (*Packet)(a1))
}

func transmitStep(a0, _ unsafe.Pointer) {
	ifc := (*Iface)(a0)
	ifc.node.net.transmitNext(ifc)
}

func arriveStep(a0, a1 unsafe.Pointer) {
	nd := (*Node)(a0)
	nd.net.arrive(nd, (*Packet)(a1))
}

func deliverStep(a0, a1 unsafe.Pointer) {
	nd := (*Node)(a0)
	nd.net.deliver(nd, (*Packet)(a1))
}

// Send injects a packet at p.Src. It must be called in kernel context
// — on a partitioned network, in the context of the kernel that owns
// p.Src (from an event callback or a process running there).
func (n *Network) Send(p *Packet) {
	src := n.nodes[p.Src]
	k := src.k
	if p.Src == p.Dst {
		// Loopback: deliver at the current instant.
		k.AtFunc(k.Now(), deliverStep, unsafe.Pointer(src), unsafe.Pointer(p))
		return
	}
	// Host injection serialization.
	delay := time.Duration(0)
	if src.HostBps > 0 {
		start := k.Now()
		if src.txFree > start {
			start = src.txFree
		}
		dur := time.Duration(float64(p.Bytes) * 8 / src.HostBps * 1e9)
		src.txFree = start.Add(dur)
		delay = src.txFree.Sub(k.Now())
	}
	k.AfterFunc(delay, forwardStep, unsafe.Pointer(src), unsafe.Pointer(p))
}

// drop invokes the packet's drop callback and recycles it into nd's
// partition pool (nd is the node where the loss happened, so the pool
// touched is always the executing kernel's own).
func (n *Network) drop(nd *Node, p *Packet) {
	if p.OnDrop != nil {
		p.OnDrop(p)
	}
	if p.Handler != nil {
		p.Handler.HandleDrop(p)
	}
	n.recycle(nd, p)
}

// forward routes packet p out of node nd.
func (n *Network) forward(nd *Node, p *Packet) {
	idx := nd.routes[p.Dst]
	if idx < 0 {
		nd.dropped++
		n.drop(nd, p)
		return
	}
	ifc := nd.ifaces[idx]
	if ifc.queued+int64(p.Bytes) > ifc.capBytes {
		ifc.drops++
		n.drop(nd, p)
		return
	}
	ifc.q.Push(p)
	ifc.queued += int64(p.Bytes)
	if !ifc.busy {
		n.transmitNext(ifc)
	}
}

// transmitNext serializes the head-of-line packet on ifc. It runs on
// the kernel of ifc's node; when the peer node lives on another kernel
// the arrival crosses via the iface's pdes queue instead of the heap.
func (n *Network) transmitNext(ifc *Iface) {
	if ifc.q.Len() == 0 {
		ifc.busy = false
		return
	}
	ifc.busy = true
	p := ifc.q.Pop()
	ifc.queued -= int64(p.Bytes)

	l := ifc.link
	k := ifc.node.k
	wire := l.Framer.WireSize(p.Bytes)
	txTime := time.Duration(float64(wire) * 8 / l.Bps * 1e9)
	ifc.wireBytes += int64(wire)
	ifc.busyTime += txTime
	// Link free after serialization; next packet may start then.
	k.AfterFunc(txTime, transmitStep, unsafe.Pointer(ifc), nil)
	// Packet arrives at the peer after serialization + propagation.
	if ifc.xq != nil {
		ifc.xq.Push(unsafe.Pointer(p), k.Now().Add(txTime+l.Delay))
	} else {
		k.AfterFunc(txTime+l.Delay, arriveStep, unsafe.Pointer(ifc.peer.node), unsafe.Pointer(p))
	}
}

// arrive handles a packet reaching node nd.
func (n *Network) arrive(nd *Node, p *Packet) {
	k := nd.k
	nd.work++
	p.hops++
	if p.hops > 64 {
		nd.dropped++ // routing loop guard
		n.drop(nd, p)
		return
	}
	if nd.ID == p.Dst {
		// Host delivery drain.
		delay := time.Duration(0)
		if nd.HostBps > 0 {
			start := k.Now()
			if nd.rxFree > start {
				start = nd.rxFree
			}
			dur := time.Duration(float64(p.Bytes) * 8 / nd.HostBps * 1e9)
			nd.rxFree = start.Add(dur)
			delay = nd.rxFree.Sub(k.Now())
		}
		k.AfterFunc(delay, deliverStep, unsafe.Pointer(nd), unsafe.Pointer(p))
		return
	}
	// Relay: the forwarding CPU is a serial resource; packets queue
	// on it in arrival order.
	start := k.Now()
	if nd.fwdFree > start {
		start = nd.fwdFree
	}
	nd.fwdFree = start.Add(nd.relayCost(p.Bytes))
	k.AtFunc(nd.fwdFree, forwardStep, unsafe.Pointer(nd), unsafe.Pointer(p))
}

func (n *Network) deliver(nd *Node, p *Packet) {
	if p.OnDeliver != nil {
		p.OnDeliver(p)
	}
	if p.Handler != nil {
		p.Handler.HandleDeliver(p)
	}
	n.recycle(nd, p)
}

// Run executes the simulation until no events remain: the single
// kernel's Run unpartitioned, the pdes group's synchronized rounds
// after Partition. It returns the latest kernel clock, which every
// report should use as "now" (kernels on event-free partitions stop
// early at their last local event).
func (n *Network) Run() sim.Time {
	if n.group == nil {
		n.K.Run()
		return n.K.Now()
	}
	n.group.Run()
	return n.Now()
}

// Now reports the simulation clock: the latest kernel clock after
// Partition (the kernel that executed the globally last event carries
// the same timestamp a single kernel would), so reports derived from it
// are identical at any kernel count. Quiescent-only after Partition.
func (n *Network) Now() sim.Time {
	if n.group == nil {
		return n.K.Now()
	}
	now := n.K.Now()
	for _, pt := range n.parts[1:] {
		if t := pt.k.Now(); t > now {
			now = t
		}
	}
	return now
}

// Pending reports pending events across every kernel. Quiescent-only
// after Partition.
func (n *Network) Pending() int {
	if n.group == nil {
		return n.K.Pending()
	}
	return n.group.Pending()
}

// KernelOf returns the kernel that owns node id — the kernel a driver
// must schedule on to inject traffic at that node. Before Partition
// every node reports the network's K.
func (n *Network) KernelOf(id NodeID) *sim.Kernel {
	return n.nodes[id].k
}

// Kernels reports how many kernels execute the network (1 before
// Partition).
func (n *Network) Kernels() int {
	if n.group == nil {
		return 1
	}
	return n.group.Members()
}

// SyncStats reports the pdes synchronization counters (zero value
// before Partition). Quiescent-only after Partition.
func (n *Network) SyncStats() pdes.Stats {
	if n.group == nil {
		return pdes.Stats{}
	}
	return n.group.Stats()
}

// SetBlockedTelemetry enables wall-clock measurement of per-kernel
// barrier wait time in SyncStats (pdes.Group.SetBlockedTelemetry). A
// no-op before Partition. Quiescent-only.
func (n *Network) SetBlockedTelemetry(on bool) {
	if n.group != nil {
		n.group.SetBlockedTelemetry(on)
	}
}
