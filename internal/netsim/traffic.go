package netsim

import (
	"math"
	"math/rand"
	"sync/atomic"
	"time"

	"repro/internal/sim"
)

// CrossTraffic is an open-loop background load generator: packets of a
// fixed size with exponentially distributed inter-arrival times
// (Poisson arrivals), injected from src toward dst at a target average
// rate. It models the uncoordinated campus traffic that shared the
// testbed with the experiments, and lets jitter-under-load behaviour be
// studied.
type CrossTraffic struct {
	Net      *Network
	Src, Dst NodeID
	// Bps is the target average offered load in bit/s.
	Bps float64
	// PktBytes is the packet size (default 9180).
	PktBytes int
	// Seed makes the arrival process reproducible.
	Seed int64

	sent int64
	// delivered/dropped are atomics: on a partitioned network delivery
	// fires on Dst's kernel and drops on whichever kernel hosts the
	// loss, concurrently with the injector. sent stays plain — only the
	// injection chain on Src's kernel touches it.
	delivered int64
	dropped   int64
	stopped   bool
	next      sim.Event  // pending self-scheduled injection
	rng       *rand.Rand // persists across restarts: one Poisson process
	k         *sim.Kernel
}

// HandleDeliver implements Handler for the generator's pooled packets.
func (ct *CrossTraffic) HandleDeliver(*Packet) { atomic.AddInt64(&ct.delivered, 1) }

// HandleDrop implements Handler for the generator's pooled packets.
func (ct *CrossTraffic) HandleDrop(*Packet) { atomic.AddInt64(&ct.dropped, 1) }

// Start begins injecting packets at the current virtual time and keeps
// going until Stop is called or the kernel runs dry of other events
// plus `horizon` (packets self-schedule; the generator stops itself at
// the horizon to let simulations terminate). The horizon is half-open:
// no packet is injected at exactly Now()+horizon, so a zero horizon
// injects nothing. A non-positive Bps offers no load and also injects
// nothing. Start clears any previous Stop, so a generator can be
// restarted for a new phase of the same simulation.
func (ct *CrossTraffic) Start(horizon time.Duration) {
	if ct.PktBytes == 0 {
		ct.PktBytes = 9180
	}
	// The whole injection chain lives on Src's kernel (the network's
	// only kernel unless it is partitioned).
	ct.k = ct.Net.KernelOf(ct.Src)
	// Cancel any chain from an earlier Start: without this, a
	// Stop-then-Start with no intervening kernel drain would leave the
	// old chain's pending injection alive and double the offered load.
	ct.k.Cancel(ct.next)
	ct.next = sim.Event{}
	if ct.Bps <= 0 {
		// Zero offered load: the mean inter-arrival gap diverges, so
		// the Poisson process degenerates to "never". Injecting even
		// one packet here (as the unguarded division used to) would
		// misreport an idle generator as 1 sent.
		return
	}
	ct.stopped = false
	if ct.rng == nil {
		// Lazily seeded and kept across restarts, so Stop-then-Start
		// continues one Poisson process instead of replaying the same
		// gap sequence each phase. The generator is derived from the
		// network (stream ct.Seed+7), so Network.SetSeed reseeds every
		// generator in one place; with the default zero network seed
		// the sequence is byte-identical to the historical
		// rand.NewSource(ct.Seed+7) behaviour.
		ct.rng = ct.Net.NewRand(ct.Seed + 7)
	}
	end := ct.k.Now().Add(horizon)
	meanGap := float64(ct.PktBytes*8) / ct.Bps // seconds
	var inject func()
	inject = func() {
		ct.next = sim.Event{}
		if ct.stopped || ct.k.Now() >= end {
			return
		}
		ct.sent++
		p := ct.Net.NewPacketAt(ct.Src)
		p.Src, p.Dst, p.Bytes = ct.Src, ct.Dst, ct.PktBytes
		p.Handler = ct
		ct.Net.Send(p)
		gap := -math.Log(1-ct.rng.Float64()) * meanGap
		ct.next = ct.k.After(sim.Duration(gap), inject)
	}
	ct.next = ct.k.At(ct.k.Now(), inject)
}

// Stop halts injection until the next Start, cancelling the pending
// self-scheduled arrival so a stopped generator leaves no events
// behind.
func (ct *CrossTraffic) Stop() {
	ct.stopped = true
	if ct.k != nil {
		ct.k.Cancel(ct.next)
	}
	ct.next = sim.Event{}
}

// Stats reports sent/delivered/dropped packet counts. Read only while
// the simulation is quiescent.
func (ct *CrossTraffic) Stats() (sent, delivered, dropped int64) {
	return ct.sent, atomic.LoadInt64(&ct.delivered), atomic.LoadInt64(&ct.dropped)
}
