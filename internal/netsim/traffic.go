package netsim

import (
	"math"
	"math/rand"
	"time"

	"repro/internal/sim"
)

// CrossTraffic is an open-loop background load generator: packets of a
// fixed size with exponentially distributed inter-arrival times
// (Poisson arrivals), injected from src toward dst at a target average
// rate. It models the uncoordinated campus traffic that shared the
// testbed with the experiments, and lets jitter-under-load behaviour be
// studied.
type CrossTraffic struct {
	Net      *Network
	Src, Dst NodeID
	// Bps is the target average offered load in bit/s.
	Bps float64
	// PktBytes is the packet size (default 9180).
	PktBytes int
	// Seed makes the arrival process reproducible.
	Seed int64

	sent      int64
	delivered int64
	dropped   int64
	stopped   bool
}

// Start begins injecting packets at the current virtual time and keeps
// going until Stop is called or the kernel runs dry of other events
// plus `horizon` (packets self-schedule; the generator stops itself at
// the horizon to let simulations terminate).
func (ct *CrossTraffic) Start(horizon time.Duration) {
	if ct.PktBytes == 0 {
		ct.PktBytes = 9180
	}
	rng := rand.New(rand.NewSource(ct.Seed + 7))
	end := ct.Net.K.Now().Add(horizon)
	meanGap := float64(ct.PktBytes*8) / ct.Bps // seconds
	var inject func()
	inject = func() {
		if ct.stopped || ct.Net.K.Now() > end {
			return
		}
		ct.sent++
		ct.Net.Send(&Packet{
			Src: ct.Src, Dst: ct.Dst, Bytes: ct.PktBytes,
			OnDeliver: func(*Packet) { ct.delivered++ },
			OnDrop:    func(*Packet) { ct.dropped++ },
		})
		gap := -math.Log(1-rng.Float64()) * meanGap
		ct.Net.K.After(sim.Duration(gap), inject)
	}
	ct.Net.K.At(ct.Net.K.Now(), inject)
}

// Stop halts injection.
func (ct *CrossTraffic) Stop() { ct.stopped = true }

// Stats reports sent/delivered/dropped packet counts.
func (ct *CrossTraffic) Stats() (sent, delivered, dropped int64) {
	return ct.sent, ct.delivered, ct.dropped
}
