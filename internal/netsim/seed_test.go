package netsim

import (
	"math/rand"
	"testing"
	"time"
)

// NewRand with the default zero network seed must be byte-identical to
// the historical per-generator construction rand.New(rand.NewSource(s)):
// CrossTraffic gap sequences — and therefore every injection time and
// every report built on top of them — are a pure function of these
// draws. The literals pin the math/rand Source sequence itself, which
// the Go 1 compatibility promise keeps stable, so any change to the
// seed derivation fails against absolute values, not just against a
// second implementation of the same mistake.
func TestNewRandMatchesHistoricalSeeding(t *testing.T) {
	n := New(nil)
	want := []float64{
		0.91889215925276346,
		0.23150717404875204,
		0.24138756706529774,
		0.91156217437181741,
	}
	r := n.NewRand(7) // CrossTraffic{Seed: 0} historically drew from NewSource(0+7)
	for i, w := range want {
		if got := r.Float64(); got != w {
			t.Fatalf("NewRand(7) draw %d = %.17g, want %.17g (historical NewSource(7) sequence)", i, got, w)
		}
	}

	// And for arbitrary streams, equality with the legacy construction.
	for _, stream := range []int64{0, 1, 42, -3} {
		a, b := n.NewRand(stream), rand.New(rand.NewSource(stream))
		for i := 0; i < 16; i++ {
			if x, y := a.Float64(), b.Float64(); x != y {
				t.Fatalf("stream %d draw %d: NewRand=%g legacy=%g", stream, i, x, y)
			}
		}
	}
}

// SetSeed shifts every derived stream, and the same seed reproduces
// the same full simulation — packet for packet.
func TestSetSeedReproducesTraffic(t *testing.T) {
	run := func(seed int64) (sent, delivered, dropped int64) {
		n, a, b := twoHosts(LinkConfig{Bps: 1e9, Delay: time.Millisecond, MTU: 9180, QueueBytes: 64 << 10})
		n.SetSeed(seed)
		ct := &CrossTraffic{Net: n, Src: a.ID, Dst: b.ID, Bps: 200e6, Seed: 5}
		ct.Start(50 * time.Millisecond)
		n.K.Run()
		return ct.Stats()
	}
	s1, d1, p1 := run(11)
	s2, d2, p2 := run(11)
	if s1 != s2 || d1 != d2 || p1 != p2 {
		t.Errorf("same network seed diverged: %d/%d/%d vs %d/%d/%d", s1, d1, p1, s2, d2, p2)
	}
	if s1 == 0 {
		t.Fatal("seeded run sent nothing; test topology broken")
	}
	s3, _, _ := run(12)
	if s3 == s1 {
		t.Logf("different seeds produced equal sent counts (%d); gap sequences may still differ", s1)
	}
}
