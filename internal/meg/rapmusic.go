package meg

import (
	"fmt"

	"repro/internal/linalg"
)

// RAP-MUSIC (recursively applied and projected MUSIC): classic MUSIC
// returns one global peak; with several simultaneously active dipoles
// the secondary sources can hide under the primary's sidelobes.
// RAP-MUSIC finds sources one at a time, projecting each found source's
// gain space out of the signal subspace before the next scan — the
// standard extension used for multi-dipole MEG analyses like the ones
// pmusic performed.

// RAPResult is an ordered list of found sources.
type RAPResult struct {
	Positions []Vec3
	Values    []float64
}

// RAPMusic locates up to nSources dipoles on the grid. It stops early
// when the best remaining subspace correlation falls below minValue
// (e.g. 0.8), which indicates the residual subspace holds no further
// localizable source.
func RAPMusic(a *SensorArray, us *linalg.Mat, grid []Vec3, nSources int, minValue float64) (RAPResult, error) {
	if nSources < 1 {
		return RAPResult{}, fmt.Errorf("meg: nSources %d < 1", nSources)
	}
	if len(grid) == 0 {
		return RAPResult{}, fmt.Errorf("meg: empty grid")
	}
	var res RAPResult
	cur := us.Clone()
	m := us.Rows
	for k := 0; k < nSources; k++ {
		scan := Scan(a, cur, grid)
		best, val := scan.Best()
		if val < minValue {
			break
		}
		res.Positions = append(res.Positions, best)
		res.Values = append(res.Values, val)
		if k == nSources-1 {
			break
		}
		// Project the found source's gain space out of the signal
		// subspace: U <- (I - Q Q^T) U, re-orthonormalized, where Q
		// spans the gain columns of the found position.
		q := orthonormalCols(a.GainVector(best))
		if q.Cols == 0 {
			break
		}
		proj := cur.Clone()
		for j := 0; j < cur.Cols; j++ {
			col := make([]float64, m)
			for i := 0; i < m; i++ {
				col[i] = cur.At(i, j)
			}
			for b := 0; b < q.Cols; b++ {
				qb := make([]float64, m)
				for i := 0; i < m; i++ {
					qb[i] = q.At(i, b)
				}
				linalg.Axpy(-linalg.Dot(qb, col), qb, col)
			}
			for i := 0; i < m; i++ {
				proj.Set(i, j, col[i])
			}
		}
		cur = orthonormalCols(proj)
		if cur.Cols == 0 {
			break
		}
	}
	if len(res.Positions) == 0 {
		return res, fmt.Errorf("meg: no source above the %.2f threshold", minValue)
	}
	return res, nil
}
