package meg

import (
	"math"
	"testing"
	"time"

	"repro/internal/linalg"
	"repro/internal/machine"
	"repro/internal/mpi"
)

func TestVec3Ops(t *testing.T) {
	a := Vec3{1, 0, 0}
	b := Vec3{0, 1, 0}
	if c := a.Cross(b); c != (Vec3{0, 0, 1}) {
		t.Errorf("cross = %v", c)
	}
	if d := a.Add(b).Sub(b); d != a {
		t.Errorf("add/sub = %v", d)
	}
	if a.Dot(b) != 0 || a.Norm() != 1 {
		t.Error("dot/norm")
	}
	if s := a.Scale(3); s.X != 3 {
		t.Error("scale")
	}
}

func TestHelmetGeometry(t *testing.T) {
	arr := NewHelmetArray(64, 0.12)
	if len(arr.Positions) != 64 {
		t.Fatalf("%d sensors", len(arr.Positions))
	}
	for i, p := range arr.Positions {
		if math.Abs(p.Norm()-0.12) > 1e-12 {
			t.Fatalf("sensor %d not on sphere: |p| = %v", i, p.Norm())
		}
		if p.Z <= 0 {
			t.Fatalf("sensor %d below equator", i)
		}
	}
}

func TestRadialDipoleIsSilent(t *testing.T) {
	// In a spherical conductor a radial dipole produces no external
	// field: q parallel to p gives p x r . q = q . (p x r), and the
	// gain g = p x r is orthogonal to p.
	arr := NewHelmetArray(32, 0.12)
	p := Vec3{0.02, 0.01, 0.05}
	radial := p.Scale(1e-8 / p.Norm()) // moment along p
	b := arr.Forward(p, radial)
	for s, v := range b {
		if math.Abs(v) > 1e-22 {
			t.Fatalf("radial dipole visible at sensor %d: %g", s, v)
		}
	}
	// A tangential dipole is visible.
	tang := Vec3{-0.01, 0.02, 0}.Cross(p)
	tang = tang.Scale(1e-8 / tang.Norm())
	b = arr.Forward(p, tang)
	var peak float64
	for _, v := range b {
		if math.Abs(v) > peak {
			peak = math.Abs(v)
		}
	}
	if peak == 0 {
		t.Fatal("tangential dipole invisible")
	}
}

func TestFieldFallsWithDistance(t *testing.T) {
	arr := NewHelmetArray(32, 0.12)
	deep := Vec3{0.0, 0.01, 0.02}
	shallow := Vec3{0.0, 0.04, 0.08}
	mag := func(p Vec3) float64 {
		q := Vec3{1, 0, 0}.Cross(p)
		q = q.Scale(1e-8 / q.Norm())
		b := arr.Forward(p, q)
		var s float64
		for _, v := range b {
			s += v * v
		}
		return math.Sqrt(s)
	}
	if mag(shallow) <= mag(deep) {
		t.Error("shallow dipole should produce a stronger field")
	}
}

// buildScenario synthesizes data for one tangential dipole and returns
// everything MUSIC needs.
func buildScenario(t *testing.T, pos Vec3, noise float64) (*SensorArray, *ScanResult, Vec3) {
	t.Helper()
	arr := NewHelmetArray(48, 0.12)
	q := Vec3{1, 0.3, 0}.Cross(pos)
	q = q.Scale(2e-8 / q.Norm())
	nt := 100
	course := make([]float64, nt)
	for i := range course {
		course[i] = math.Sin(float64(i) * 0.3)
	}
	x, err := Synthesize(arr, []Dipole{{Pos: pos, Moment: q, Course: course}}, nt, noise, 5)
	if err != nil {
		t.Fatal(err)
	}
	cov := Covariance(x)
	us, vals, err := SignalSubspace(cov, 1)
	if err != nil {
		t.Fatal(err)
	}
	if vals[0] <= vals[1]*10 && noise == 0 {
		t.Fatalf("signal eigenvalue %g not dominant over %g", vals[0], vals[1])
	}
	grid := BrainGrid(0.09, 0.015)
	if len(grid) < 100 {
		t.Fatalf("grid too small: %d", len(grid))
	}
	return arr, Scan(arr, us, grid), pos
}

func TestMUSICLocalizesDipole(t *testing.T) {
	truth := Vec3{0.025, -0.015, 0.045}
	_, res, _ := buildScenario(t, truth, 0)
	best, val := res.Best()
	if val < 0.95 {
		t.Errorf("best MUSIC value = %.3f, want near 1", val)
	}
	if d := best.Sub(truth).Norm(); d > 0.02 {
		t.Errorf("localization error %.1f mm, want <= 20 mm (grid-limited)", d*1000)
	}
}

func TestMUSICWithNoise(t *testing.T) {
	truth := Vec3{0.02, 0.02, 0.05}
	arr, res, _ := buildScenario(t, truth, 0)
	_ = arr
	clean, _ := res.Best()
	_, resN, _ := buildScenario(t, truth, 1e-15) // modest noise vs ~1e-13 signals
	noisy, valN := resN.Best()
	if valN < 0.8 {
		t.Errorf("noisy MUSIC peak = %.3f", valN)
	}
	if d := noisy.Sub(clean).Norm(); d > 0.03 {
		t.Errorf("noise moved the peak by %.1f mm", d*1000)
	}
}

func TestMusicValueBounds(t *testing.T) {
	arr := NewHelmetArray(24, 0.12)
	pos := Vec3{0.02, 0, 0.04}
	q := Vec3{0, 0, 1}.Cross(pos)
	q = q.Scale(1e-8 / q.Norm())
	course := []float64{1, -1, 1, -1, 1, -1, 1, -1}
	x, _ := Synthesize(arr, []Dipole{{Pos: pos, Moment: q, Course: course}}, 8, 0, 1)
	us, _, err := SignalSubspace(Covariance(x), 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []Vec3{pos, {0.05, 0.05, 0.02}, {0, 0, 0.08}} {
		v := MusicValue(arr, us, p)
		if v < 0 || v > 1 {
			t.Fatalf("MUSIC value %v out of [0,1] at %v", v, p)
		}
	}
	// The origin has zero gain (p x r = 0): metric must be 0.
	if v := MusicValue(arr, us, Vec3{}); v != 0 {
		t.Errorf("origin MUSIC value = %v, want 0", v)
	}
}

func TestSynthesizeValidation(t *testing.T) {
	arr := NewHelmetArray(8, 0.12)
	_, err := Synthesize(arr, []Dipole{{Pos: Vec3{0, 0, 0.05}, Moment: Vec3{1, 0, 0}, Course: []float64{1}}}, 5, 0, 1)
	if err == nil {
		t.Error("short time course accepted")
	}
}

func TestParallelScanMatchesSerial(t *testing.T) {
	truth := Vec3{0.02, 0.01, 0.05}
	arr := NewHelmetArray(32, 0.12)
	q := Vec3{1, 0, 0}.Cross(truth)
	q = q.Scale(1e-8 / q.Norm())
	nt := 64
	course := make([]float64, nt)
	for i := range course {
		course[i] = math.Cos(float64(i) * 0.4)
	}
	x, err := Synthesize(arr, []Dipole{{Pos: truth, Moment: q, Course: course}}, nt, 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	us, _, err := SignalSubspace(Covariance(x), 1)
	if err != nil {
		t.Fatal(err)
	}
	grid := BrainGrid(0.08, 0.02)
	serial := Scan(arr, us, grid)

	var parallel *ScanResult
	err = mpi.Run(4, func(c *mpi.Comm) error {
		res, err := ParallelScan(c, arr, us, grid)
		if err != nil {
			return err
		}
		if c.Rank() == 0 {
			parallel = res
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if parallel == nil || len(parallel.Values) != len(serial.Values) {
		t.Fatal("parallel scan incomplete")
	}
	for i := range serial.Values {
		if math.Abs(serial.Values[i]-parallel.Values[i]) > 1e-12 {
			t.Fatalf("parallel scan diverges at %d", i)
		}
	}
}

func TestRAPMusicSeparatesTwoDipoles(t *testing.T) {
	arr := NewHelmetArray(64, 0.12)
	p1 := Vec3{0.03, 0.0, 0.05}
	p2 := Vec3{-0.03, 0.02, 0.04}
	mk := func(p Vec3, seed float64) Dipole {
		q := Vec3{1, seed, 0}.Cross(p)
		q = q.Scale(2e-8 / q.Norm())
		return Dipole{Pos: p, Moment: q}
	}
	d1, d2 := mk(p1, 0.2), mk(p2, -0.5)
	nt := 120
	d1.Course = make([]float64, nt)
	d2.Course = make([]float64, nt)
	for i := 0; i < nt; i++ {
		// Linearly independent time courses so the covariance has a
		// rank-2 signal subspace.
		d1.Course[i] = math.Sin(float64(i) * 0.31)
		d2.Course[i] = math.Cos(float64(i) * 0.17)
	}
	x, err := Synthesize(arr, []Dipole{d1, d2}, nt, 0, 8)
	if err != nil {
		t.Fatal(err)
	}
	us, vals, err := SignalSubspace(Covariance(x), 2)
	if err != nil {
		t.Fatal(err)
	}
	if vals[1] < vals[2]*100 {
		t.Fatalf("second signal eigenvalue %g not separated from noise floor %g", vals[1], vals[2])
	}
	grid := BrainGrid(0.09, 0.01)
	res, err := RAPMusic(arr, us, grid, 2, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Positions) != 2 {
		t.Fatalf("found %d sources, want 2", len(res.Positions))
	}
	// Each true dipole matched by one found source (order-free).
	match := func(p Vec3) float64 {
		best := 1e9
		for _, f := range res.Positions {
			if d := f.Sub(p).Norm(); d < best {
				best = d
			}
		}
		return best
	}
	if d := match(p1); d > 0.015 {
		t.Errorf("dipole 1 missed by %.1f mm", d*1000)
	}
	if d := match(p2); d > 0.015 {
		t.Errorf("dipole 2 missed by %.1f mm", d*1000)
	}
	// The two found positions must be distinct sources.
	if res.Positions[0].Sub(res.Positions[1]).Norm() < 0.02 {
		t.Error("RAP-MUSIC found the same source twice")
	}
}

func TestRAPMusicValidation(t *testing.T) {
	arr := NewHelmetArray(16, 0.12)
	us := linalgIdentityCols(16, 1)
	if _, err := RAPMusic(arr, us, nil, 1, 0.5); err == nil {
		t.Error("empty grid accepted")
	}
	if _, err := RAPMusic(arr, us, BrainGrid(0.08, 0.03), 0, 0.5); err == nil {
		t.Error("nSources=0 accepted")
	}
	// A subspace uncorrelated with any gain yields no source above
	// threshold.
	if _, err := RAPMusic(arr, us, BrainGrid(0.08, 0.03), 1, 0.999999); err == nil {
		t.Error("impossible threshold should error")
	}
}

// linalgIdentityCols builds an m x k matrix with orthonormal columns.
func linalgIdentityCols(m, k int) *linalg.Mat {
	out := linalg.NewMat(m, k)
	for j := 0; j < k; j++ {
		out.Set(j, j, 1)
	}
	return out
}

func TestDistributedModelSuperlinear(t *testing.T) {
	m := DistributedModel{
		MPP:        machine.CrayT3E600(),
		Vector:     machine.CrayT90(),
		WANLatency: 600 * time.Microsecond,
		WANBps:     400e6,
		Sensors:    148, Signals: 5, GridPoints: 50000, Iterations: 10,
	}
	// Low-volume WAN traffic: the subspace is a few KB.
	if b := m.subspaceBytes(); b > 10000 {
		t.Errorf("subspace payload = %d bytes, should be low volume", b)
	}
	sp := m.SuperlinearSpeedup(64)
	if sp <= 1.05 {
		t.Errorf("distributed speedup = %.2f, want > 1 (the paper's superlinear claim)", sp)
	}
	// The gain must come from the eigendecomposition moving to the
	// vector machine: with a tiny grid (scan-dominated regime gone,
	// eig dominating), the advantage grows.
	small := m
	small.GridPoints = 1000
	if small.SuperlinearSpeedup(64) <= sp {
		t.Error("eig-dominated case should benefit more from the vector machine")
	}
	// Latency sensitivity: a slow WAN erodes the gain.
	slow := m
	slow.WANLatency = 500 * time.Millisecond
	if slow.SuperlinearSpeedup(64) >= sp {
		t.Error("WAN latency should erode the distributed gain")
	}
}
