// Package meg reimplements pmusic, the parallel
// magnetoencephalography analysis of the Institute of Medicine: it
// estimates the position and strength of current dipoles in a human
// brain from MEG measurements using the MUSIC (MUltiple SIgnal
// Classification) algorithm.
//
// The forward model is the standard spherical-conductor result: the
// radial magnetic field of a current dipole q at position p, measured
// at sensor position r on a radial magnetometer, is
//
//	B_r(r) = (mu0 / 4 pi) * q . (p x r) / (|r| |r - p|^3)
//
// which is linear in q and blind to radial dipoles — a property the
// tests exploit. MUSIC builds the sensor covariance of the measurement,
// extracts the signal subspace by eigendecomposition, and scans a grid
// of candidate positions for locations whose gain space lies inside the
// signal subspace.
//
// In the testbed the program was distributed over a massively parallel
// and a vector supercomputer to achieve superlinear speedup; the scan
// (embarrassingly parallel) ran on the MPP while the eigendecomposition
// (dense, vectorizable) ran on the vector machine, with low-volume but
// latency-sensitive communication between them. DistributedModel
// reproduces that arithmetic.
package meg

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/linalg"
)

// Vec3 is a point or vector in head coordinates (meters).
type Vec3 struct{ X, Y, Z float64 }

// Add returns v + w.
func (v Vec3) Add(w Vec3) Vec3 { return Vec3{v.X + w.X, v.Y + w.Y, v.Z + w.Z} }

// Sub returns v - w.
func (v Vec3) Sub(w Vec3) Vec3 { return Vec3{v.X - w.X, v.Y - w.Y, v.Z - w.Z} }

// Scale returns s*v.
func (v Vec3) Scale(s float64) Vec3 { return Vec3{s * v.X, s * v.Y, s * v.Z} }

// Dot returns the inner product.
func (v Vec3) Dot(w Vec3) float64 { return v.X*w.X + v.Y*w.Y + v.Z*w.Z }

// Cross returns the cross product.
func (v Vec3) Cross(w Vec3) Vec3 {
	return Vec3{v.Y*w.Z - v.Z*w.Y, v.Z*w.X - v.X*w.Z, v.X*w.Y - v.Y*w.X}
}

// Norm returns |v|.
func (v Vec3) Norm() float64 { return math.Sqrt(v.Dot(v)) }

// mu0over4pi is the magnetic constant / 4 pi.
const mu0over4pi = 1e-7

// SensorArray is a set of radial magnetometers on a spherical cap above
// the head.
type SensorArray struct {
	Positions []Vec3
}

// NewHelmetArray places n sensors quasi-uniformly on the upper
// hemisphere of radius rSensor (meters) using a Fibonacci spiral.
func NewHelmetArray(n int, rSensor float64) *SensorArray {
	pos := make([]Vec3, n)
	golden := math.Pi * (3 - math.Sqrt(5))
	for i := 0; i < n; i++ {
		// z in (0.15, 1): upper cap only.
		z := 0.15 + (1-0.15)*(float64(i)+0.5)/float64(n)
		r := math.Sqrt(1 - z*z)
		th := golden * float64(i)
		pos[i] = Vec3{rSensor * r * math.Cos(th), rSensor * r * math.Sin(th), rSensor * z}
	}
	return &SensorArray{Positions: pos}
}

// GainVector returns g such that the sensor reading is g . q for a
// dipole moment q at position p: g_s = mu0/4pi * (p x r_s) / (|r_s| |r_s - p|^3)
// stacked per sensor as a 3-column matrix row.
func (a *SensorArray) GainVector(p Vec3) *linalg.Mat {
	g := linalg.NewMat(len(a.Positions), 3)
	for s, r := range a.Positions {
		d := r.Sub(p)
		den := r.Norm() * math.Pow(d.Norm(), 3)
		if den < 1e-18 {
			continue // dipole at sensor: leave zero row
		}
		v := p.Cross(r).Scale(mu0over4pi / den)
		g.Set(s, 0, v.X)
		g.Set(s, 1, v.Y)
		g.Set(s, 2, v.Z)
	}
	return g
}

// Forward computes the sensor reading for a dipole (p, q).
func (a *SensorArray) Forward(p, q Vec3) []float64 {
	g := a.GainVector(p)
	return g.MulVec([]float64{q.X, q.Y, q.Z})
}

// Dipole is a source with a position, a fixed orientation/strength and
// a time course.
type Dipole struct {
	Pos    Vec3
	Moment Vec3      // orientation x strength (A*m)
	Course []float64 // activation over time samples
}

// Synthesize generates sensor data (sensors x time) for the dipoles
// plus white noise of the given std dev.
func Synthesize(a *SensorArray, dipoles []Dipole, nt int, noise float64, seed int64) (*linalg.Mat, error) {
	m := len(a.Positions)
	x := linalg.NewMat(m, nt)
	for _, d := range dipoles {
		if len(d.Course) < nt {
			return nil, fmt.Errorf("meg: dipole time course %d shorter than %d", len(d.Course), nt)
		}
		b := a.Forward(d.Pos, d.Moment)
		for t := 0; t < nt; t++ {
			for s := 0; s < m; s++ {
				x.Set(s, t, x.At(s, t)+b[s]*d.Course[t])
			}
		}
	}
	rng := rand.New(rand.NewSource(seed))
	if noise > 0 {
		for i := range x.Data {
			x.Data[i] += rng.NormFloat64() * noise
		}
	}
	return x, nil
}

// Covariance returns X X^T / nt.
func Covariance(x *linalg.Mat) *linalg.Mat {
	m, nt := x.Rows, x.Cols
	c := linalg.NewMat(m, m)
	for i := 0; i < m; i++ {
		ri := x.Data[i*nt : (i+1)*nt]
		for j := i; j < m; j++ {
			rj := x.Data[j*nt : (j+1)*nt]
			var s float64
			for t := 0; t < nt; t++ {
				s += ri[t] * rj[t]
			}
			s /= float64(nt)
			c.Set(i, j, s)
			c.Set(j, i, s)
		}
	}
	return c
}

// SignalSubspace extracts the dominant nSignals eigenvectors of the
// covariance (columns of the returned matrix).
func SignalSubspace(cov *linalg.Mat, nSignals int) (*linalg.Mat, []float64, error) {
	vals, vecs, err := linalg.EigSym(cov)
	if err != nil {
		return nil, nil, err
	}
	if nSignals > len(vals) {
		return nil, nil, fmt.Errorf("meg: %d signals > %d sensors", nSignals, len(vals))
	}
	us := linalg.NewMat(cov.Rows, nSignals)
	for j := 0; j < nSignals; j++ {
		for i := 0; i < cov.Rows; i++ {
			us.Set(i, j, vecs.At(i, j))
		}
	}
	return us, vals, nil
}

// MusicValue computes the subspace correlation of a candidate position:
// the largest principal angle cosine^2 between the gain space at p and
// the signal subspace. Values near 1 indicate a source.
func MusicValue(a *SensorArray, us *linalg.Mat, p Vec3) float64 {
	g := a.GainVector(p)
	// Orthonormalize the gain columns by modified Gram-Schmidt,
	// dropping near-null directions (the radial direction is null in
	// a spherical conductor).
	cols := orthonormalCols(g)
	if cols.Cols == 0 {
		return 0
	}
	// M = cols^T Us Us^T cols; its largest eigenvalue is the squared
	// max subspace correlation.
	ut := us.T().Mul(cols) // nSignals x k
	m := ut.T().Mul(ut)    // k x k symmetric PSD
	vals, _, err := linalg.EigSym(m)
	if err != nil || len(vals) == 0 {
		return 0
	}
	v := vals[0]
	if v < 0 {
		v = 0
	}
	if v > 1 {
		v = 1
	}
	return v
}

// orthonormalCols returns an orthonormal basis for the column space of
// g (columns with residual norm below tol are dropped).
func orthonormalCols(g *linalg.Mat) *linalg.Mat {
	m, n := g.Rows, g.Cols
	// Copy columns.
	cols := make([][]float64, 0, n)
	var scale float64
	for j := 0; j < n; j++ {
		c := make([]float64, m)
		for i := 0; i < m; i++ {
			c[i] = g.At(i, j)
		}
		if nv := linalg.Norm2(c); nv > scale {
			scale = nv
		}
		cols = append(cols, c)
	}
	tol := 1e-8 * scale
	var basis [][]float64
	for _, c := range cols {
		for _, b := range basis {
			linalg.Axpy(-linalg.Dot(b, c), b, c)
		}
		if nv := linalg.Norm2(c); nv > tol {
			linalg.Scale(1/nv, c)
			basis = append(basis, c)
		}
	}
	out := linalg.NewMat(m, len(basis))
	for j, b := range basis {
		for i := 0; i < m; i++ {
			out.Set(i, j, b[i])
		}
	}
	return out
}

// ScanResult is the MUSIC metric evaluated over a grid.
type ScanResult struct {
	Points []Vec3
	Values []float64
}

// Best returns the grid point with the highest MUSIC value.
func (r *ScanResult) Best() (Vec3, float64) {
	bi, bv := 0, -1.0
	for i, v := range r.Values {
		if v > bv {
			bi, bv = i, v
		}
	}
	return r.Points[bi], bv
}

// Scan evaluates the MUSIC metric on all grid points (serially).
func Scan(a *SensorArray, us *linalg.Mat, grid []Vec3) *ScanResult {
	res := &ScanResult{Points: grid, Values: make([]float64, len(grid))}
	for i, p := range grid {
		res.Values[i] = MusicValue(a, us, p)
	}
	return res
}

// BrainGrid builds a cubic grid of candidate positions inside a sphere
// of radius rBrain, spacing h, upper hemisphere only (z > 0.01).
func BrainGrid(rBrain, h float64) []Vec3 {
	var out []Vec3
	for z := h; z < rBrain; z += h {
		for y := -rBrain; y <= rBrain; y += h {
			for x := -rBrain; x <= rBrain; x += h {
				p := Vec3{x, y, z}
				if p.Norm() < rBrain*0.95 {
					out = append(out, p)
				}
			}
		}
	}
	return out
}
