package meg

import (
	"fmt"
	"time"

	"repro/internal/linalg"
	"repro/internal/machine"
	"repro/internal/mpi"
)

// ParallelScan distributes the MUSIC grid scan over an mpi
// communicator, the way pmusic decomposes its search space: each rank
// evaluates a contiguous chunk of the grid and rank 0 gathers the
// values. All ranks must pass identical grids and subspaces.
func ParallelScan(c *mpi.Comm, a *SensorArray, us *linalg.Mat, grid []Vec3) (*ScanResult, error) {
	n := len(grid)
	p := c.Size()
	lo := c.Rank() * n / p
	hi := (c.Rank() + 1) * n / p
	local := make([]float64, hi-lo)
	for i := lo; i < hi; i++ {
		local[i-lo] = MusicValue(a, us, grid[i])
	}
	parts, err := c.Gather(0, mpi.Float64sToBytes(local))
	if err != nil {
		return nil, err
	}
	if c.Rank() != 0 {
		return nil, nil
	}
	vals := make([]float64, 0, n)
	for r, buf := range parts {
		part, err := mpi.BytesToFloat64s(buf)
		if err != nil {
			return nil, fmt.Errorf("meg: gather from rank %d: %w", r, err)
		}
		vals = append(vals, part...)
	}
	if len(vals) != n {
		return nil, fmt.Errorf("meg: gathered %d values for %d grid points", len(vals), n)
	}
	return &ScanResult{Points: grid, Values: vals}, nil
}

// DistributedModel reproduces the paper's rationale for running pmusic
// across a massively parallel and a vector supercomputer: the
// covariance eigendecomposition is dense linear algebra that the vector
// machine executes at vector rates, while the grid scan parallelizes
// across MPP PEs. Communication is "low volume, but sensitive to
// latency": per iteration only the subspace (sensors x signals
// float64s) crosses the WAN.
type DistributedModel struct {
	MPP    machine.Spec
	Vector machine.Spec
	// WANLatency is the one-way latency between the machines.
	WANLatency time.Duration
	// WANBps is the WAN payload bandwidth.
	WANBps float64

	Sensors    int
	Signals    int
	GridPoints int
	// Iterations of the estimate-scan loop per analysis epoch.
	Iterations int
}

// eigFlops estimates the dense symmetric eigendecomposition cost
// (~9 n^3 for Jacobi-class methods).
func (m DistributedModel) eigFlops() float64 {
	n := float64(m.Sensors)
	return 9 * n * n * n
}

// scanFlops estimates the grid-scan cost: per point, gain construction
// + projection (~ 12*sensors*signals + 60*sensors).
func (m DistributedModel) scanFlops() float64 {
	return float64(m.GridPoints) * (12*float64(m.Sensors)*float64(m.Signals) + 60*float64(m.Sensors))
}

// subspaceBytes is the per-iteration WAN payload: the signal subspace
// matrix.
func (m DistributedModel) subspaceBytes() int {
	return 8 * m.Sensors * m.Signals
}

// MPPOnlyTime models running both phases on mppPEs of the MPP. The
// eigendecomposition parallelizes poorly (its tight recurrences are
// modeled as capped at 4-way useful parallelism on scalar PEs).
func (m DistributedModel) MPPOnlyTime(mppPEs int) time.Duration {
	eigPar := mppPEs
	if eigPar > 4 {
		eigPar = 4
	}
	eig := m.MPP.ComputeTime(m.eigFlops(), eigPar)
	scan := m.MPP.ComputeTime(m.scanFlops(), mppPEs)
	return time.Duration(m.Iterations) * (eig + scan)
}

// DistributedTime models the metacomputing split: the vector machine
// performs the eigendecomposition (vector rates) overlapping nothing,
// then ships the subspace over the WAN, and the MPP scans.
func (m DistributedModel) DistributedTime(mppPEs int) time.Duration {
	eig := m.Vector.ComputeTime(m.eigFlops(), 1)
	wan := m.WANLatency + time.Duration(float64(m.subspaceBytes())*8/m.WANBps*1e9)
	scan := m.MPP.ComputeTime(m.scanFlops(), mppPEs)
	return time.Duration(m.Iterations) * (eig + wan + scan)
}

// SuperlinearSpeedup reports the speedup of the distributed
// configuration over MPP-only at equal MPP PE count; values above 1 are
// the "superlinear" gain the paper attributes to architecture-matched
// distribution (the comparison baseline gains no PEs — the vector
// machine substitutes for the poorly-vectorizing phase).
func (m DistributedModel) SuperlinearSpeedup(mppPEs int) float64 {
	return float64(m.MPPOnlyTime(mppPEs)) / float64(m.DistributedTime(mppPEs))
}
