// Package obs is a dependency-free metrics registry for the
// coordinator's observability surface: counters, gauges and histograms
// with atomic hot paths, rendered in the Prometheus text exposition
// format.
//
// The design splits the cost asymmetrically. Registration and label
// resolution take locks and may allocate; they happen once, at wiring
// time. The instruments themselves — Inc, Add, Set, Observe — are plain
// atomics on pre-resolved pointers and never allocate, so they can sit
// on the point execution hot path (a pinned AllocsPerRun test holds
// them to zero). Rendering walks the registry under its lock and writes
//
//	# HELP gtw_points_run_total Points computed fresh.
//	# TYPE gtw_points_run_total counter
//	gtw_points_run_total{tenant="climate"} 42
//
// which any Prometheus-compatible scraper ingests as-is.
package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// A Counter is a monotonically increasing integer. Inc and Add are
// single atomic ops: zero allocations, safe for concurrent use.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (n must be >= 0; negative deltas are ignored so a counter
// never runs backwards).
func (c *Counter) Add(n int64) {
	if n > 0 {
		c.v.Add(n)
	}
}

// Value reads the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// A Gauge is a float64 that can go up and down, stored as atomic bits.
type Gauge struct {
	bits atomic.Uint64
}

// Set replaces the gauge value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adjusts the gauge by delta via a CAS loop; no allocations.
func (g *Gauge) Add(delta float64) {
	for {
		old := g.bits.Load()
		nv := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, nv) {
			return
		}
	}
}

// Value reads the current gauge value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// A Histogram counts observations into fixed buckets (cumulative at
// render time, per-bucket atomics at observe time). Observe is a
// linear scan over the bounds plus two atomic adds — zero allocations.
type Histogram struct {
	bounds []float64      // upper bounds, ascending; +Inf implicit
	counts []atomic.Int64 // len(bounds)+1; last is the +Inf bucket
	sum    atomic.Uint64  // float64 bits, CAS-accumulated
	count  atomic.Int64
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	for {
		old := h.sum.Load()
		nv := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, nv) {
			break
		}
	}
	h.count.Add(1)
}

// Count reads the total number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum reads the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// DefBuckets covers sub-millisecond point runs through minute-scale
// sweeps — the spread of job latencies gtwd actually sees.
var DefBuckets = []float64{.001, .005, .01, .05, .1, .5, 1, 5, 10, 30, 60, 300}

// family is one named metric with all its label series.
type family struct {
	name, help, kind string
	label            string // label key for vectors, "" for scalars
	buckets          []float64

	series map[string]any // label value ("" for scalars) -> instrument
}

// A CounterVec is a counter family keyed by one label. Resolve series
// once with With and cache the *Counter for hot paths.
type CounterVec struct {
	r   *Registry
	fam *family
}

// With returns the counter for the given label value, creating it on
// first use.
func (v *CounterVec) With(value string) *Counter {
	v.r.mu.Lock()
	defer v.r.mu.Unlock()
	c, ok := v.fam.series[value]
	if !ok {
		c = &Counter{}
		v.fam.series[value] = c
	}
	return c.(*Counter)
}

// A GaugeVec is a gauge family keyed by one label.
type GaugeVec struct {
	r   *Registry
	fam *family
}

// With returns the gauge for the given label value, creating it on
// first use.
func (v *GaugeVec) With(value string) *Gauge {
	v.r.mu.Lock()
	defer v.r.mu.Unlock()
	g, ok := v.fam.series[value]
	if !ok {
		g = &Gauge{}
		v.fam.series[value] = g
	}
	return g.(*Gauge)
}

// Drop removes the series for the given label value (a worker that
// deregistered, a tenant that disappeared from the config).
func (v *GaugeVec) Drop(value string) {
	v.r.mu.Lock()
	defer v.r.mu.Unlock()
	delete(v.fam.series, value)
}

// Registry holds metric families in registration order. All lookups
// are idempotent: re-registering a name returns the existing
// instrument, and a kind clash panics (it is a wiring bug, not a
// runtime condition).
type Registry struct {
	mu     sync.Mutex
	order  []*family
	byName map[string]*family
}

// NewRegistry builds an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]*family)}
}

func (r *Registry) familyLocked(name, help, kind, label string) *family {
	f, ok := r.byName[name]
	if ok {
		if f.kind != kind || f.label != label {
			panic(fmt.Sprintf("obs: metric %q re-registered as %s(label=%q), was %s(label=%q)",
				name, kind, label, f.kind, f.label))
		}
		return f
	}
	f = &family{name: name, help: help, kind: kind, label: label, series: make(map[string]any)}
	r.order = append(r.order, f)
	r.byName[name] = f
	return f
}

// Counter registers (or fetches) a scalar counter.
func (r *Registry) Counter(name, help string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.familyLocked(name, help, "counter", "")
	c, ok := f.series[""]
	if !ok {
		c = &Counter{}
		f.series[""] = c
	}
	return c.(*Counter)
}

// CounterVec registers (or fetches) a counter family keyed by label.
func (r *Registry) CounterVec(name, help, label string) *CounterVec {
	r.mu.Lock()
	defer r.mu.Unlock()
	return &CounterVec{r: r, fam: r.familyLocked(name, help, "counter", label)}
}

// Gauge registers (or fetches) a scalar gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.familyLocked(name, help, "gauge", "")
	g, ok := f.series[""]
	if !ok {
		g = &Gauge{}
		f.series[""] = g
	}
	return g.(*Gauge)
}

// GaugeVec registers (or fetches) a gauge family keyed by label.
func (r *Registry) GaugeVec(name, help, label string) *GaugeVec {
	r.mu.Lock()
	defer r.mu.Unlock()
	return &GaugeVec{r: r, fam: r.familyLocked(name, help, "gauge", label)}
}

// Histogram registers (or fetches) a histogram with the given bucket
// upper bounds (nil means DefBuckets). Bounds must be ascending.
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	if buckets == nil {
		buckets = DefBuckets
	}
	for i := 1; i < len(buckets); i++ {
		if buckets[i] <= buckets[i-1] {
			panic(fmt.Sprintf("obs: histogram %q buckets not ascending", name))
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.familyLocked(name, help, "histogram", "")
	h, ok := f.series[""]
	if !ok {
		bounds := append([]float64(nil), buckets...)
		h = &Histogram{bounds: bounds, counts: make([]atomic.Int64, len(bounds)+1)}
		f.series[""] = h
		f.buckets = bounds
	}
	return h.(*Histogram)
}

// WriteText renders every family in the Prometheus text exposition
// format: families in registration order, series sorted by label value
// so output is deterministic.
func (r *Registry) WriteText(w io.Writer) error {
	r.mu.Lock()
	fams := append([]*family(nil), r.order...)
	r.mu.Unlock()
	var b strings.Builder
	for _, f := range fams {
		r.mu.Lock()
		keys := make([]string, 0, len(f.series))
		for k := range f.series {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		series := make([]any, len(keys))
		for i, k := range keys {
			series[i] = f.series[k]
		}
		r.mu.Unlock()
		if len(series) == 0 {
			continue
		}
		fmt.Fprintf(&b, "# HELP %s %s\n", f.name, f.help)
		fmt.Fprintf(&b, "# TYPE %s %s\n", f.name, f.kind)
		for i, k := range keys {
			switch m := series[i].(type) {
			case *Counter:
				fmt.Fprintf(&b, "%s%s %d\n", f.name, labelPair(f.label, k), m.Value())
			case *Gauge:
				fmt.Fprintf(&b, "%s%s %s\n", f.name, labelPair(f.label, k), formatFloat(m.Value()))
			case *Histogram:
				cum := int64(0)
				for bi, bound := range m.bounds {
					cum += m.counts[bi].Load()
					fmt.Fprintf(&b, "%s_bucket{le=%q} %d\n", f.name, formatFloat(bound), cum)
				}
				cum += m.counts[len(m.bounds)].Load()
				fmt.Fprintf(&b, "%s_bucket{le=\"+Inf\"} %d\n", f.name, cum)
				fmt.Fprintf(&b, "%s_sum %s\n", f.name, formatFloat(m.Sum()))
				fmt.Fprintf(&b, "%s_count %d\n", f.name, m.Count())
			}
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

func labelPair(key, value string) string {
	if key == "" {
		return ""
	}
	return "{" + key + "=" + strconv.Quote(value) + "}"
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}
