package obs

import (
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeHistogramValues(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "c")
	c.Inc()
	c.Add(4)
	c.Add(-3) // ignored: counters never run backwards
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	g := r.Gauge("g", "g")
	g.Set(2.5)
	g.Add(-1)
	if got := g.Value(); got != 1.5 {
		t.Fatalf("gauge = %v, want 1.5", got)
	}
	h := r.Histogram("h", "h", []float64{1, 10})
	for _, v := range []float64{0.5, 2, 5, 50} {
		h.Observe(v)
	}
	if h.Count() != 4 {
		t.Fatalf("histogram count = %d, want 4", h.Count())
	}
	if h.Sum() != 57.5 {
		t.Fatalf("histogram sum = %v, want 57.5", h.Sum())
	}
}

func TestRegistrationIdempotent(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("x_total", "x")
	b := r.Counter("x_total", "x")
	if a != b {
		t.Fatal("re-registering a counter returned a different instrument")
	}
	v := r.CounterVec("y_total", "y", "tenant")
	if v.With("t1") != v.With("t1") {
		t.Fatal("vec series not cached")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("kind clash did not panic")
		}
	}()
	r.Gauge("x_total", "x") // counter re-registered as gauge: wiring bug
}

// TestHotPathZeroAlloc pins the acceptance criterion: metric
// increments on the point hot path must not allocate.
func TestHotPathZeroAlloc(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("alloc_c_total", "c")
	vc := r.CounterVec("alloc_vc_total", "vc", "tenant").With("t")
	g := r.Gauge("alloc_g", "g")
	h := r.Histogram("alloc_h", "h", nil)
	if n := testing.AllocsPerRun(1000, func() { c.Inc() }); n != 0 {
		t.Errorf("Counter.Inc allocates %v/op, want 0", n)
	}
	if n := testing.AllocsPerRun(1000, func() { vc.Add(3) }); n != 0 {
		t.Errorf("resolved vec Counter.Add allocates %v/op, want 0", n)
	}
	if n := testing.AllocsPerRun(1000, func() { g.Set(1.25) }); n != 0 {
		t.Errorf("Gauge.Set allocates %v/op, want 0", n)
	}
	if n := testing.AllocsPerRun(1000, func() { g.Add(0.5) }); n != 0 {
		t.Errorf("Gauge.Add allocates %v/op, want 0", n)
	}
	if n := testing.AllocsPerRun(1000, func() { h.Observe(0.42) }); n != 0 {
		t.Errorf("Histogram.Observe allocates %v/op, want 0", n)
	}
}

func TestWriteTextFormat(t *testing.T) {
	r := NewRegistry()
	r.Counter("gtw_leases_granted_total", "Leases granted to workers.").Add(7)
	pv := r.CounterVec("gtw_points_run_total", "Points computed fresh.", "tenant")
	pv.With("beta").Add(2)
	pv.With(`al"pha`).Add(3)
	r.Gauge("gtw_store_bytes", "Resident point-store bytes.").Set(1024)
	h := r.Histogram("gtw_job_duration_seconds", "Job wall time.", []float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(5)
	var sb strings.Builder
	if err := r.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	want := `# HELP gtw_leases_granted_total Leases granted to workers.
# TYPE gtw_leases_granted_total counter
gtw_leases_granted_total 7
# HELP gtw_points_run_total Points computed fresh.
# TYPE gtw_points_run_total counter
gtw_points_run_total{tenant="al\"pha"} 3
gtw_points_run_total{tenant="beta"} 2
# HELP gtw_store_bytes Resident point-store bytes.
# TYPE gtw_store_bytes gauge
gtw_store_bytes 1024
# HELP gtw_job_duration_seconds Job wall time.
# TYPE gtw_job_duration_seconds histogram
gtw_job_duration_seconds_bucket{le="0.1"} 1
gtw_job_duration_seconds_bucket{le="1"} 2
gtw_job_duration_seconds_bucket{le="+Inf"} 3
gtw_job_duration_seconds_sum 5.55
gtw_job_duration_seconds_count 3
`
	if sb.String() != want {
		t.Errorf("WriteText mismatch:\ngot:\n%s\nwant:\n%s", sb.String(), want)
	}
}

func TestConcurrentUse(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("race_total", "r")
	v := r.CounterVec("race_vec_total", "r", "k")
	h := r.Histogram("race_h", "r", nil)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 500; j++ {
				c.Inc()
				v.With("a").Inc()
				h.Observe(float64(j))
				if j%100 == 0 {
					var sb strings.Builder
					_ = r.WriteText(&sb)
				}
			}
		}(i)
	}
	wg.Wait()
	if c.Value() != 8*500 {
		t.Fatalf("counter = %d, want %d", c.Value(), 8*500)
	}
	if v.With("a").Value() != 8*500 {
		t.Fatalf("vec counter = %d, want %d", v.With("a").Value(), 8*500)
	}
}
