package gtw

import (
	"testing"
)

// The facade must expose a working end-to-end path: build the testbed,
// run a transfer, reserve resources, run an experiment driver.
func TestFacadeQuickstartPath(t *testing.T) {
	tb := NewTestbed(Config{})
	res, err := tb.TCPTransfer(HostT3E600, HostSP2, 16<<20, TCPConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if res.ThroughputBps < 200e6 || res.ThroughputBps > 280e6 {
		t.Errorf("facade transfer = %.1f Mbit/s", res.ThroughputBps/1e6)
	}
	if err := tb.Reserve("session", HostT3E600, HostOnyx2); err != nil {
		t.Fatal(err)
	}
	tb.Release("session")
}

func TestFacadeTables(t *testing.T) {
	paper := PaperTable1()
	model := ModelTable1()
	if len(paper) != 9 || len(model) != 9 {
		t.Fatalf("table lengths %d/%d", len(paper), len(model))
	}
	if paper[8].Speedup != 110.5 {
		t.Errorf("paper table corrupted: %v", paper[8])
	}
	if model[8].Speedup < 105 || model[8].Speedup > 116 {
		t.Errorf("model speedup at 256 PEs = %.1f", model[8].Speedup)
	}
}

func TestFacadeExperiments(t *testing.T) {
	res, err := RunFMRIScenario(FMRIScenario{PEs: 256, TR: 3.0, Frames: 6})
	if err != nil {
		t.Fatal(err)
	}
	if res.MaxGUIDelay >= 5 {
		t.Errorf("scenario delay %.2f s", res.MaxGUIDelay)
	}
	fw, err := FutureWorkAnalysis()
	if err != nil {
		t.Fatal(err)
	}
	if fw.BWiNSaturation < 1998 || fw.BWiNSaturation > 2001 {
		t.Errorf("saturation %.2f", fw.BWiNSaturation)
	}
	agg, err := BackboneAggregate(OC12, 2)
	if err != nil {
		t.Fatal(err)
	}
	if agg.AggregateMbps <= 0 {
		t.Error("no aggregate throughput")
	}
	if OC3.LineRate() >= OC12.LineRate() || OC12.LineRate() >= OC48.LineRate() {
		t.Error("carrier ordering broken")
	}
}

func TestFacadeExtensions(t *testing.T) {
	tb := NewTestbed(Config{Extensions: true})
	if _, err := tb.Host(HostUniBonn); err != nil {
		t.Fatal(err)
	}
	if _, err := tb.Host(HostDLR); err != nil {
		t.Fatal(err)
	}
	if _, err := tb.Host(HostUniKoeln); err != nil {
		t.Fatal(err)
	}
}
