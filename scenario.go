package gtw

import (
	"context"

	"repro/internal/core"
)

// This file is the scenario layer of the public API: a registry of
// uniformly-shaped experiments, functional options, and a concurrent
// run engine. See the package comment in gtw.go for the quickstart.

// Scenario is one runnable experiment: a name, a description, and a
// Run method over a testbed.
type Scenario = core.Scenario

// Report is the uniform scenario result: Text renders the
// human-readable table, JSON marshals the measurement record.
type Report = core.Report

// Options carries the cross-scenario parameters; build it with
// functional options (WithWAN, WithPEs, ...).
type Options = core.Options

// Option mutates Options.
type Option = core.Option

// RunResult is one scenario outcome from RunAll, with per-scenario
// timing and error.
type RunResult = core.RunResult

// Report types of the built-in scenarios, for callers that need the
// concrete record rather than the Report interface.
type (
	// Table1Report compares the calibrated T3E model with Table 1.
	Table1Report = core.Table1Report
	// Figure1Report carries the section-2 path measurements.
	Figure1Report = core.Figure1Report
	// Figure2Report carries the realtime-fMRI latency budget.
	Figure2Report = core.Figure2Report
	// Figure3Report carries the FIRE GUI overlay measurement.
	Figure3Report = core.Figure3Report
	// Figure4Report carries the 3-D visualization measurements.
	Figure4Report = core.Figure4Report
	// Section3Report carries the application-requirements table.
	Section3Report = core.Section3Report
	// FMRIDataflowReport carries the derived fMRI dataflow timing.
	FMRIDataflowReport = core.FMRIDataflowReport
	// FMRISweepReport carries the fMRI dataflow swept over PE counts.
	FMRISweepReport = core.FMRISweepReport
	// UpgradeReport carries the OC-12 -> OC-48 upgrade measurements.
	UpgradeReport = core.UpgradeReport
	// FutureWorkReport carries the forward-looking analyses.
	FutureWorkReport = core.FutureWorkReport
	// ClimateReport carries the coupled climate run.
	ClimateReport = core.ClimateReport
	// GroundwaterReport carries the TRACE/PARTRACE coupled run.
	GroundwaterReport = core.GroundwaterReport
	// FSIReport carries the MetaCISPAR COCOLIB coupled run.
	FSIReport = core.FSIReport
	// MEGReport carries the pmusic dipole localisation.
	MEGReport = core.MEGReport
	// VideoReport carries the D1 video streaming runs.
	VideoReport = core.VideoReport
	// RTSessionReport carries the loopback-TCP realtime fMRI session.
	RTSessionReport = core.RTSessionReport
)

// NewScenario builds a Scenario from a run function — the one-file way
// to add a workload:
//
//	gtw.MustRegister(gtw.NewScenario("my-workload", "what it measures",
//		func(ctx context.Context, tb *gtw.Testbed, opts gtw.Options) (gtw.Report, error) {
//			...
//		}))
func NewScenario(name, description string,
	run func(ctx context.Context, tb *Testbed, opts Options) (Report, error)) Scenario {
	return core.NewScenario(name, description, run)
}

// Register adds a scenario to the registry; it rejects empty and
// duplicate names.
func Register(s Scenario) error { return core.Register(s) }

// MustRegister is Register for init functions; it panics on error.
func MustRegister(s Scenario) { core.MustRegister(s) }

// Lookup resolves a registered scenario by name.
func Lookup(name string) (Scenario, bool) { return core.Lookup(name) }

// Scenarios lists every registered scenario sorted by name.
func Scenarios() []Scenario { return core.Scenarios() }

// Run executes one registered scenario on a fresh testbed (or the one
// supplied with WithTestbed).
func Run(ctx context.Context, name string, opts ...Option) (Report, error) {
	return core.Run(ctx, name, opts...)
}

// RunAll executes the named scenarios (all registered ones when names
// is empty) concurrently on a worker pool — each on a fresh testbed,
// or all on one shared testbed with WithTestbed. Results come back in
// input order with per-scenario timing; cancelling ctx stops in-flight
// scenarios and skips queued ones.
func RunAll(ctx context.Context, names []string, opts ...Option) ([]RunResult, error) {
	return core.RunAll(ctx, names, opts...)
}

// DefaultOptions returns the engine defaults (OC-48 backbone, 256 PEs,
// 30 frames, 2 flows).
func DefaultOptions() Options { return core.DefaultOptions() }

// NewOptions applies opts on top of DefaultOptions.
func NewOptions(opts ...Option) Options { return core.NewOptions(opts...) }

// WithWAN selects the backbone carrier generation (OC12, OC48) for
// engine-built testbeds. Scenarios that sweep carrier generations by
// design (backbone-aggregate, mixed-traffic, video-d1) ignore it.
func WithWAN(oc OC) Option { return core.WithWAN(oc) }

// WithExtensions includes the section-5 extension sites.
func WithExtensions() Option { return core.WithExtensions() }

// WithPEs sets the T3E partition size for the fMRI scenarios.
func WithPEs(n int) Option { return core.WithPEs(n) }

// WithFrames sets the number of acquired volumes/frames/scans.
func WithFrames(n int) Option { return core.WithFrames(n) }

// WithFlows sets the number of concurrent backbone flows.
func WithFlows(n int) Option { return core.WithFlows(n) }

// WithTestbed runs every scenario of a RunAll on the given shared
// testbed: shared co-allocation, cumulative backbone accounting, and
// transfers serialised onto the one simulation kernel. The testbed's
// own Config wins: WithWAN and WithExtensions do not affect a testbed
// supplied here.
func WithTestbed(tb *Testbed) Option { return core.WithTestbed(tb) }

// WithWorkers bounds the RunAll worker pool (default GOMAXPROCS).
func WithWorkers(n int) Option { return core.WithWorkers(n) }

// WithKernels partitions every engine-built testbed's network at
// WAN-link boundaries and runs it as a conservative parallel simulation
// on up to n kernels (capped by the number of WAN-separated sites).
// Like WithShards it changes only wall-clock time: reports are
// byte-identical at any kernel count.
func WithKernels(n int) Option { return core.WithKernels(n) }

// WithIntra lets WithKernels partitioning additionally cut inside a
// site at switch boundaries when the WAN cut alone cannot reach the
// requested kernel count; per-pair lookahead keeps the short
// switch-port bounds from throttling the WAN pairs. Reports stay
// byte-identical either way.
func WithIntra() Option { return core.WithIntra() }
